// Model persistence, both formats. SaveModel/LoadModel (text) and
// SaveModelBinary/LoadModelBinary: bit-exact round trips of trained
// models (including numerical-attribute Gaussians and the Θ shard
// stamp), cross-format equivalence, and clean Status errors — never
// crashes — on truncated or corrupt files, bad magic, checksum
// mismatches and unsupported versions.
#include "core/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "core/engine.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// RAII deleter so failed assertions do not leak files between runs.
class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Model TrainPlantedModel() {
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, 301);
  FitOptions options;
  options.attributes = {"text"};
  options.config = testing::PlantedFixtureConfig(302);
  auto fit = Engine::Fit(fixture.dataset, options);
  EXPECT_TRUE(fit.ok()) << fit.status().ToString();
  return std::move(fit).value().model;
}

void ExpectBitExact(const Model& a, const Model& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_clusters(), b.num_clusters());
  EXPECT_EQ(a.theta_shards, b.theta_shards);
  EXPECT_EQ(a.theta.data(), b.theta.data());  // exact double equality
  EXPECT_EQ(a.gamma, b.gamma);
  EXPECT_EQ(a.link_types, b.link_types);
  EXPECT_EQ(a.objective, b.objective);
  ASSERT_EQ(a.components.size(), b.components.size());
  ASSERT_EQ(a.attributes.size(), b.attributes.size());
  for (size_t i = 0; i < a.components.size(); ++i) {
    EXPECT_EQ(a.attributes[i].name, b.attributes[i].name);
    EXPECT_EQ(a.attributes[i].kind, b.attributes[i].kind);
    EXPECT_EQ(a.attributes[i].vocab_size, b.attributes[i].vocab_size);
    ASSERT_EQ(a.components[i].kind(), b.components[i].kind());
    if (a.components[i].kind() == AttributeKind::kCategorical) {
      EXPECT_EQ(a.components[i].beta().data(), b.components[i].beta().data());
    } else {
      for (size_t k = 0; k < a.num_clusters(); ++k) {
        const auto& ga = a.components[i].gaussian(static_cast<ClusterId>(k));
        const auto& gb = b.components[i].gaussian(static_cast<ClusterId>(k));
        EXPECT_EQ(ga.mean(), gb.mean());
        EXPECT_EQ(ga.variance(), gb.variance());
      }
    }
  }
}

TEST(ModelIoTest, RoundTripIsBitExactOnPlantedFixture) {
  Model model = TrainPlantedModel();
  ScopedFile file(TempPath("genclus_model_roundtrip.model"));
  ASSERT_TRUE(SaveModel(model, file.path()).ok());
  auto loaded = LoadModel(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitExact(model, *loaded);
}

TEST(ModelIoTest, RoundTripPreservesGaussianComponents) {
  // Hand-build a model with a numerical attribute to cover the gaussian
  // records (the planted fixture is categorical-only).
  Model model;
  model.theta = Matrix(3, 2);
  model.theta(0, 0) = 0.25;
  model.theta(0, 1) = 0.75;
  model.theta(1, 0) = 1.0 / 3.0;  // not exactly representable in decimal
  model.theta(1, 1) = 2.0 / 3.0;
  model.theta(2, 0) = 1e-12;
  model.theta(2, 1) = 1.0 - 1e-12;
  model.gamma = {0.1, 14.46};
  model.link_types = {"tt", "tp"};
  model.objective = -123.456789012345678;
  model.attributes.push_back({"temperature", AttributeKind::kNumerical, 0});
  model.components.push_back(AttributeComponents::Numerical(
      {GaussianDistribution(-7.25, 0.3333333333333333),
       GaussianDistribution(31.0, 2.718281828459045)}));
  ASSERT_TRUE(model.Validate().ok());

  ScopedFile file(TempPath("genclus_model_gaussian.model"));
  ASSERT_TRUE(SaveModel(model, file.path()).ok());
  auto loaded = LoadModel(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitExact(model, *loaded);
}

TEST(ModelIoTest, SaveRejectsInvalidModel) {
  Model model;  // K = 0: fails Validate
  ScopedFile file(TempPath("genclus_model_invalid.model"));
  Status s = SaveModel(model, file.path());
  EXPECT_FALSE(s.ok());
}

TEST(ModelIoTest, LoadFailsCleanlyOnMissingFile) {
  auto loaded = LoadModel(TempPath("genclus_model_does_not_exist.model"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(ModelIoTest, LoadFailsCleanlyOnTruncatedFile) {
  Model model = TrainPlantedModel();
  ScopedFile file(TempPath("genclus_model_truncated.model"));
  ASSERT_TRUE(SaveModel(model, file.path()).ok());

  // Drop the trailing 40% of the file: beta rows (and possibly theta rows)
  // go missing. Loading must fail with IoError, not crash or return a
  // partial model.
  std::ifstream in(file.path());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string contents = buffer.str();
  in.close();
  std::ofstream out(file.path(), std::ios::trunc);
  out << contents.substr(0, contents.size() * 3 / 5);
  out.close();

  auto loaded = LoadModel(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(ModelIoTest, LoadFailsCleanlyOnCorruptNumericFields) {
  const char* kCorruptFiles[] = {
      // Malformed theta value.
      "genclus_model 1\nclusters 2\nnodes 1\nobjective 0\n"
      "theta 0 0.5 banana\n",
      // Gamma is not a number.
      "genclus_model 1\nclusters 2\nnodes 0\nobjective 0\n"
      "link_type tt NaNish\n",
      // Negative variance.
      "genclus_model 1\nclusters 2\nnodes 0\nobjective 0\n"
      "attribute numerical temp\ngaussian 0 1.0 -2.0\n",
      // Theta row out of range.
      "genclus_model 1\nclusters 2\nnodes 1\nobjective 0\n"
      "theta 7 0.5 0.5\n",
      // Unknown record.
      "genclus_model 1\nclusters 2\nnodes 0\nobjective 0\nwhatever 1\n",
      // Beta without a categorical attribute.
      "genclus_model 1\nclusters 2\nnodes 0\nobjective 0\nbeta 0 1.0\n",
      // Missing header.
      "clusters 2\nnodes 0\nobjective 0\n",
      // Re-declared nodes header after theta was sized (would move the
      // bounds check past the allocated buffer).
      "genclus_model 1\nclusters 2\nnodes 1\nobjective 0\n"
      "theta 0 0.5 0.5\nnodes 5\ntheta 3 0.5 0.5\n",
      // Re-declared clusters header.
      "genclus_model 1\nclusters 2\nnodes 1\nobjective 0\nclusters 4\n",
      // Non-finite theta values parse as doubles but must be rejected.
      "genclus_model 1\nclusters 2\nnodes 1\nobjective 0\n"
      "theta 0 nan nan\n",
      "genclus_model 1\nclusters 2\nnodes 1\nobjective 0\n"
      "theta 0 inf 0.5\n",
  };
  for (const char* contents : kCorruptFiles) {
    ScopedFile file(TempPath("genclus_model_corrupt.model"));
    std::ofstream out(file.path(), std::ios::trunc);
    out << contents;
    out.close();
    auto loaded = LoadModel(file.path());
    ASSERT_FALSE(loaded.ok()) << "accepted corrupt file:\n" << contents;
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError) << contents;
  }
}

TEST(ModelIoTest, LoadRejectsUnsupportedVersion) {
  ScopedFile file(TempPath("genclus_model_version.model"));
  std::ofstream out(file.path(), std::ios::trunc);
  out << "genclus_model 99\nclusters 2\nnodes 0\nobjective 0\n";
  out.close();
  auto loaded = LoadModel(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(ModelIoTest, TextRoundTripPreservesThetaShardStamp) {
  Model model = TrainPlantedModel();
  model.theta_shards = 3;
  ScopedFile file(TempPath("genclus_model_shards.model"));
  ASSERT_TRUE(SaveModel(model, file.path()).ok());
  auto loaded = LoadModel(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->theta_shards, 3u);
}

// ---------------------------------------------------------------------------
// Binary format.

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ModelIoBinaryTest, RoundTripIsBitExactOnPlantedFixture) {
  Model model = TrainPlantedModel();
  ScopedFile file(TempPath("genclus_model_roundtrip.bin"));
  Status saved = SaveModelBinary(model, file.path());
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  auto loaded = LoadModelBinary(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitExact(model, *loaded);
}

TEST(ModelIoBinaryTest, RoundTripPreservesGaussiansAndShardStamp) {
  Model model;
  model.theta = Matrix(5, 2);
  for (size_t v = 0; v < 5; ++v) {
    model.theta(v, 0) = 1.0 / (3.0 + static_cast<double>(v));
    model.theta(v, 1) = 1.0 - model.theta(v, 0);
  }
  model.theta_shards = 2;  // Θ persists per shard: two blocks here
  model.gamma = {0.1, 14.46};
  model.link_types = {"tt", "tp"};
  model.objective = -123.456789012345678;
  model.attributes.push_back({"temperature", AttributeKind::kNumerical, 0});
  model.components.push_back(AttributeComponents::Numerical(
      {GaussianDistribution(-7.25, 0.3333333333333333),
       GaussianDistribution(31.0, 2.718281828459045)}));
  ASSERT_TRUE(model.Validate().ok());

  ScopedFile file(TempPath("genclus_model_gaussian.bin"));
  ASSERT_TRUE(SaveModelBinary(model, file.path()).ok());
  auto loaded = LoadModelBinary(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitExact(model, *loaded);
  EXPECT_EQ(loaded->theta_shards, 2u);
}

TEST(ModelIoBinaryTest, BinaryAndTextRoundTripsAgreeBitwise) {
  // Cross-format equivalence: the same model through either format loads
  // back to bitwise-identical parameters.
  Model model = TrainPlantedModel();
  model.theta_shards = 2;
  ScopedFile text_file(TempPath("genclus_model_cross.model"));
  ScopedFile binary_file(TempPath("genclus_model_cross.bin"));
  ASSERT_TRUE(SaveModel(model, text_file.path()).ok());
  ASSERT_TRUE(SaveModelBinary(model, binary_file.path()).ok());
  auto from_text = LoadModel(text_file.path());
  auto from_binary = LoadModelBinary(binary_file.path());
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();
  ExpectBitExact(*from_text, *from_binary);
}

TEST(ModelIoBinaryTest, SaveRejectsInvalidModel) {
  Model model;  // K = 0: fails Validate
  ScopedFile file(TempPath("genclus_model_invalid.bin"));
  EXPECT_FALSE(SaveModelBinary(model, file.path()).ok());
}

TEST(ModelIoBinaryTest, LoadFailsCleanlyOnMissingFile) {
  auto loaded = LoadModelBinary(TempPath("genclus_model_missing.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(ModelIoBinaryTest, LoadFailsCleanlyOnTruncation) {
  Model model = TrainPlantedModel();
  ScopedFile file(TempPath("genclus_model_truncated.bin"));
  ASSERT_TRUE(SaveModelBinary(model, file.path()).ok());
  const std::string full = ReadFileBytes(file.path());
  // Every truncation point must fail cleanly — inside the header, inside
  // the sections, and mid-Θ.
  for (size_t keep : {size_t{0}, size_t{8}, size_t{63}, size_t{64},
                      size_t{100}, full.size() / 2, full.size() - 1}) {
    WriteFileBytes(file.path(), full.substr(0, keep));
    auto loaded = LoadModelBinary(file.path());
    ASSERT_FALSE(loaded.ok()) << "accepted truncation at " << keep;
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError) << keep;
  }
}

TEST(ModelIoBinaryTest, LoadFailsCleanlyOnCorruptPayload) {
  Model model = TrainPlantedModel();
  ScopedFile file(TempPath("genclus_model_corrupt.bin"));
  ASSERT_TRUE(SaveModelBinary(model, file.path()).ok());
  std::string bytes = ReadFileBytes(file.path());
  ASSERT_GT(bytes.size(), 200u);
  // Flip one payload byte: the checksum must catch it before any parsing.
  bytes[150] = static_cast<char>(bytes[150] ^ 0x5a);
  WriteFileBytes(file.path(), bytes);
  auto loaded = LoadModelBinary(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST(ModelIoBinaryTest, LoadRejectsBadMagicAndVersionAndTextFile) {
  Model model = TrainPlantedModel();
  ScopedFile file(TempPath("genclus_model_header.bin"));
  ASSERT_TRUE(SaveModelBinary(model, file.path()).ok());
  const std::string good = ReadFileBytes(file.path());

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  WriteFileBytes(file.path(), bad_magic);
  auto loaded = LoadModelBinary(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);

  // The version lives in the (un-checksummed) header, so a bumped version
  // is reported as such, not as corruption.
  std::string bad_version = good;
  bad_version[8] = 99;
  WriteFileBytes(file.path(), bad_version);
  loaded = LoadModelBinary(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);

  // A text model handed to the binary loader is a clean bad-magic error,
  // and vice versa a binary file fails the text parser cleanly.
  ScopedFile text_file(TempPath("genclus_model_header.model"));
  ASSERT_TRUE(SaveModel(model, text_file.path()).ok());
  EXPECT_FALSE(LoadModelBinary(text_file.path()).ok());
  WriteFileBytes(file.path(), good);
  EXPECT_FALSE(LoadModel(file.path()).ok());
}

TEST(ModelIoBinaryTest, FingerprintMatchesContainerChecksum) {
  // Model::Fingerprint is DEFINED as the binary container's payload
  // checksum, computed without touching the filesystem: the u64 at
  // header bytes 24..31 of a fresh save must equal it exactly.
  const Model model = TrainPlantedModel();
  ScopedFile file(TempPath("genclus_model_fingerprint.bin"));
  ASSERT_TRUE(SaveModelBinary(model, file.path()).ok());
  std::ifstream in(file.path(), std::ios::binary);
  ASSERT_TRUE(in.good());
  in.seekg(24);
  uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  ASSERT_TRUE(in.good());
  EXPECT_EQ(model.Fingerprint(), stored);

  // Stable across copies and round-trips; sensitive to any content bit.
  const Model copy = model;
  EXPECT_EQ(copy.Fingerprint(), model.Fingerprint());
  auto loaded = LoadModelBinary(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().Fingerprint(), model.Fingerprint());
  Model perturbed = model;
  perturbed.theta(0, 0) = perturbed.theta(0, 0) * (1.0 + 1e-12);
  EXPECT_NE(perturbed.Fingerprint(), model.Fingerprint());
}

TEST(ModelIoTest, SuccessfulSavesLeaveNoTempDebris) {
  // Saves commit through a sibling .tmp + rename; on success the temp
  // must be gone and only the target remain.
  const Model model = TrainPlantedModel();
  ScopedFile text(TempPath("genclus_model_atomic.model"));
  ScopedFile binary(TempPath("genclus_model_atomic.bin"));
  ASSERT_TRUE(SaveModel(model, text.path()).ok());
  ASSERT_TRUE(SaveModelBinary(model, binary.path()).ok());
  EXPECT_TRUE(std::filesystem::exists(text.path()));
  EXPECT_TRUE(std::filesystem::exists(binary.path()));
  EXPECT_FALSE(std::filesystem::exists(text.path() + ".tmp"));
  EXPECT_FALSE(std::filesystem::exists(binary.path() + ".tmp"));
}

#if defined(GENCLUS_FAILPOINTS)
TEST(ModelIoTest, InjectedSaveCrashLeavesPreviousFileIntact) {
  // "model_io.save" simulates a crash mid-write: the save fails, but the
  // previously committed file must survive byte-for-byte — the whole
  // point of the write-to-temp + rename protocol.
  const Model model = TrainPlantedModel();
  for (const bool binary : {false, true}) {
    ScopedFile file(TempPath(binary ? "genclus_model_crash.bin"
                                    : "genclus_model_crash.model"));
    ScopedFile debris(file.path() + ".tmp");
    auto save = [&](const Model& m) {
      return binary ? SaveModelBinary(m, file.path())
                    : SaveModel(m, file.path());
    };
    ASSERT_TRUE(save(model).ok());
    const std::string committed = ReadFileBytes(file.path());

    Failpoints::Arm("model_io.save", {.max_fires = 1});
    const Status crashed = save(model);
    Failpoints::DisarmAll();
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.code(), StatusCode::kIoError);
    // Target intact; the half-written temp is the only residue.
    EXPECT_EQ(ReadFileBytes(file.path()), committed);

    // And the survivor still loads.
    if (binary) {
      EXPECT_TRUE(LoadModelBinary(file.path()).ok());
    } else {
      EXPECT_TRUE(LoadModel(file.path()).ok());
    }
  }
}

TEST(ModelIoTest, InjectedLoadTruncationFailsCleanly) {
  // "model_io.load" halves the in-memory file image: every downstream
  // bounds check must turn that into a clean IoError, never a crash.
  const Model model = TrainPlantedModel();
  ScopedFile file(TempPath("genclus_model_load_trunc.bin"));
  ASSERT_TRUE(SaveModelBinary(model, file.path()).ok());
  Failpoints::Arm("model_io.load", {.max_fires = 1});
  auto loaded = LoadModelBinary(file.path());
  Failpoints::DisarmAll();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}
#endif

}  // namespace
}  // namespace genclus
