// SaveModel/LoadModel: bit-exact round trips of trained models (including
// numerical-attribute Gaussians) and clean Status errors — never crashes —
// on truncated or corrupt files.
#include "core/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "core/engine.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// RAII deleter so failed assertions do not leak files between runs.
class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Model TrainPlantedModel() {
  auto fixture = MakeTwoCommunityNetwork(8, 1.0, 301);
  FitOptions options;
  options.attributes = {"text"};
  options.config = testing::PlantedFixtureConfig(302);
  auto fit = Engine::Fit(fixture.dataset, options);
  EXPECT_TRUE(fit.ok()) << fit.status().ToString();
  return std::move(fit).value().model;
}

void ExpectBitExact(const Model& a, const Model& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_clusters(), b.num_clusters());
  EXPECT_EQ(a.theta.data(), b.theta.data());  // exact double equality
  EXPECT_EQ(a.gamma, b.gamma);
  EXPECT_EQ(a.link_types, b.link_types);
  EXPECT_EQ(a.objective, b.objective);
  ASSERT_EQ(a.components.size(), b.components.size());
  ASSERT_EQ(a.attributes.size(), b.attributes.size());
  for (size_t i = 0; i < a.components.size(); ++i) {
    EXPECT_EQ(a.attributes[i].name, b.attributes[i].name);
    EXPECT_EQ(a.attributes[i].kind, b.attributes[i].kind);
    EXPECT_EQ(a.attributes[i].vocab_size, b.attributes[i].vocab_size);
    ASSERT_EQ(a.components[i].kind(), b.components[i].kind());
    if (a.components[i].kind() == AttributeKind::kCategorical) {
      EXPECT_EQ(a.components[i].beta().data(), b.components[i].beta().data());
    } else {
      for (size_t k = 0; k < a.num_clusters(); ++k) {
        const auto& ga = a.components[i].gaussian(static_cast<ClusterId>(k));
        const auto& gb = b.components[i].gaussian(static_cast<ClusterId>(k));
        EXPECT_EQ(ga.mean(), gb.mean());
        EXPECT_EQ(ga.variance(), gb.variance());
      }
    }
  }
}

TEST(ModelIoTest, RoundTripIsBitExactOnPlantedFixture) {
  Model model = TrainPlantedModel();
  ScopedFile file(TempPath("genclus_model_roundtrip.model"));
  ASSERT_TRUE(SaveModel(model, file.path()).ok());
  auto loaded = LoadModel(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitExact(model, *loaded);
}

TEST(ModelIoTest, RoundTripPreservesGaussianComponents) {
  // Hand-build a model with a numerical attribute to cover the gaussian
  // records (the planted fixture is categorical-only).
  Model model;
  model.theta = Matrix(3, 2);
  model.theta(0, 0) = 0.25;
  model.theta(0, 1) = 0.75;
  model.theta(1, 0) = 1.0 / 3.0;  // not exactly representable in decimal
  model.theta(1, 1) = 2.0 / 3.0;
  model.theta(2, 0) = 1e-12;
  model.theta(2, 1) = 1.0 - 1e-12;
  model.gamma = {0.1, 14.46};
  model.link_types = {"tt", "tp"};
  model.objective = -123.456789012345678;
  model.attributes.push_back({"temperature", AttributeKind::kNumerical, 0});
  model.components.push_back(AttributeComponents::Numerical(
      {GaussianDistribution(-7.25, 0.3333333333333333),
       GaussianDistribution(31.0, 2.718281828459045)}));
  ASSERT_TRUE(model.Validate().ok());

  ScopedFile file(TempPath("genclus_model_gaussian.model"));
  ASSERT_TRUE(SaveModel(model, file.path()).ok());
  auto loaded = LoadModel(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitExact(model, *loaded);
}

TEST(ModelIoTest, SaveRejectsInvalidModel) {
  Model model;  // K = 0: fails Validate
  ScopedFile file(TempPath("genclus_model_invalid.model"));
  Status s = SaveModel(model, file.path());
  EXPECT_FALSE(s.ok());
}

TEST(ModelIoTest, LoadFailsCleanlyOnMissingFile) {
  auto loaded = LoadModel(TempPath("genclus_model_does_not_exist.model"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(ModelIoTest, LoadFailsCleanlyOnTruncatedFile) {
  Model model = TrainPlantedModel();
  ScopedFile file(TempPath("genclus_model_truncated.model"));
  ASSERT_TRUE(SaveModel(model, file.path()).ok());

  // Drop the trailing 40% of the file: beta rows (and possibly theta rows)
  // go missing. Loading must fail with IoError, not crash or return a
  // partial model.
  std::ifstream in(file.path());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string contents = buffer.str();
  in.close();
  std::ofstream out(file.path(), std::ios::trunc);
  out << contents.substr(0, contents.size() * 3 / 5);
  out.close();

  auto loaded = LoadModel(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(ModelIoTest, LoadFailsCleanlyOnCorruptNumericFields) {
  const char* kCorruptFiles[] = {
      // Malformed theta value.
      "genclus_model 1\nclusters 2\nnodes 1\nobjective 0\n"
      "theta 0 0.5 banana\n",
      // Gamma is not a number.
      "genclus_model 1\nclusters 2\nnodes 0\nobjective 0\n"
      "link_type tt NaNish\n",
      // Negative variance.
      "genclus_model 1\nclusters 2\nnodes 0\nobjective 0\n"
      "attribute numerical temp\ngaussian 0 1.0 -2.0\n",
      // Theta row out of range.
      "genclus_model 1\nclusters 2\nnodes 1\nobjective 0\n"
      "theta 7 0.5 0.5\n",
      // Unknown record.
      "genclus_model 1\nclusters 2\nnodes 0\nobjective 0\nwhatever 1\n",
      // Beta without a categorical attribute.
      "genclus_model 1\nclusters 2\nnodes 0\nobjective 0\nbeta 0 1.0\n",
      // Missing header.
      "clusters 2\nnodes 0\nobjective 0\n",
      // Re-declared nodes header after theta was sized (would move the
      // bounds check past the allocated buffer).
      "genclus_model 1\nclusters 2\nnodes 1\nobjective 0\n"
      "theta 0 0.5 0.5\nnodes 5\ntheta 3 0.5 0.5\n",
      // Re-declared clusters header.
      "genclus_model 1\nclusters 2\nnodes 1\nobjective 0\nclusters 4\n",
      // Non-finite theta values parse as doubles but must be rejected.
      "genclus_model 1\nclusters 2\nnodes 1\nobjective 0\n"
      "theta 0 nan nan\n",
      "genclus_model 1\nclusters 2\nnodes 1\nobjective 0\n"
      "theta 0 inf 0.5\n",
  };
  for (const char* contents : kCorruptFiles) {
    ScopedFile file(TempPath("genclus_model_corrupt.model"));
    std::ofstream out(file.path(), std::ios::trunc);
    out << contents;
    out.close();
    auto loaded = LoadModel(file.path());
    ASSERT_FALSE(loaded.ok()) << "accepted corrupt file:\n" << contents;
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError) << contents;
  }
}

TEST(ModelIoTest, LoadRejectsUnsupportedVersion) {
  ScopedFile file(TempPath("genclus_model_version.model"));
  std::ofstream out(file.path(), std::ios::trunc);
  out << "genclus_model 99\nclusters 2\nnodes 0\nobjective 0\n";
  out.close();
  auto loaded = LoadModel(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace genclus
