// Incremental model maintenance (core/update.h):
//   * Engine::Refit warm-starts from a previous model — surviving nodes
//     keep their Theta rows as the initial iterate, new nodes are seeded
//     by fold-in, gamma/components carry over — and lands within NMI
//     tolerance of a from-scratch fit on the grown dataset;
//   * a warm start from the converged model on the SAME dataset converges
//     (nearly) immediately — the degenerate refit every nightly job hits
//     when nothing arrived;
//   * ApplyUpdates folds NetworkDelta batches into a Dataset + Model in
//     place: shapes grow, every row stays on the K-simplex, untouched
//     rows are bitwise untouched, and the result is independent of how
//     the same growth is split into delta batches;
//   * both paths validate their inputs (shrunk dataset, node-count
//     mismatch, bad options).
#include "core/update.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "eval/nmi.h"
#include "hin/delta.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

class UpdateTest : public ::testing::Test {
 protected:
  // One grown fixture shared by the suite: `full` is the 8-per-side
  // network, `base` its two-thirds prefix, `remainder` the growth delta
  // between them. Fitting once keeps the file fast.
  static void SetUpTestSuite() {
    full_ = new testing::TwoCommunityNetwork(
        MakeTwoCommunityNetwork(8, 1.0, 901));
    const size_t total = full_->dataset.network.num_nodes();
    auto remainder = new NetworkDelta();
    auto base = SliceDatasetPrefix(full_->dataset, (2 * total) / 3,
                                   remainder);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    base_ = new Dataset(std::move(base).value());
    remainder_ = remainder;

    FitOptions options;
    options.attributes = {"text"};
    options.config = testing::PlantedFixtureConfig(902);
    auto fit = Engine::Fit(*base_, options);
    ASSERT_TRUE(fit.ok()) << fit.status().ToString();
    base_model_ = new Model(std::move(fit).value().model);
  }

  static void TearDownTestSuite() {
    delete base_model_;
    base_model_ = nullptr;
    delete remainder_;
    remainder_ = nullptr;
    delete base_;
    base_ = nullptr;
    delete full_;
    full_ = nullptr;
  }

  static void ExpectRowsOnSimplex(const Matrix& theta) {
    for (size_t v = 0; v < theta.rows(); ++v) {
      double sum = 0.0;
      for (size_t k = 0; k < theta.cols(); ++k) {
        EXPECT_GT(theta(v, k), 0.0) << "v=" << v;
        sum += theta(v, k);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << "v=" << v;
    }
  }

  static double LabelNmi(const Model& model, const Dataset& dataset) {
    std::vector<uint32_t> truth(dataset.network.num_nodes());
    for (NodeId v = 0; v < dataset.network.num_nodes(); ++v) {
      truth[v] = dataset.labels.Get(v);
    }
    return NormalizedMutualInformation(model.HardLabels(), truth);
  }

  static testing::TwoCommunityNetwork* full_;
  static Dataset* base_;
  static NetworkDelta* remainder_;
  static Model* base_model_;
};

testing::TwoCommunityNetwork* UpdateTest::full_ = nullptr;
Dataset* UpdateTest::base_ = nullptr;
NetworkDelta* UpdateTest::remainder_ = nullptr;
Model* UpdateTest::base_model_ = nullptr;

TEST_F(UpdateTest, RefitMatchesFullFitQualityOnGrownDataset) {
  FitOptions full_options;
  full_options.attributes = {"text"};
  full_options.config = testing::PlantedFixtureConfig(903);
  auto fullfit = Engine::Fit(full_->dataset, full_options);
  ASSERT_TRUE(fullfit.ok()) << fullfit.status().ToString();

  RefitOptions options;
  options.config = testing::PlantedFixtureConfig(904);
  auto refit = Engine::Refit(full_->dataset, *base_model_, options);
  ASSERT_TRUE(refit.ok()) << refit.status().ToString();

  const Model& warm = refit.value().model;
  EXPECT_EQ(warm.num_nodes(), full_->dataset.network.num_nodes());
  EXPECT_EQ(warm.num_clusters(), base_model_->num_clusters());
  ExpectRowsOnSimplex(warm.theta);
  EXPECT_TRUE(warm.ValidateAgainst(full_->dataset.network).ok());

  // The refit must recover the planted structure as well as the
  // from-scratch fit (the bench gates the cost side of this bargain).
  const double full_nmi = LabelNmi(fullfit.value().model, full_->dataset);
  const double warm_nmi = LabelNmi(warm, full_->dataset);
  EXPECT_GE(warm_nmi, full_nmi - 0.01)
      << "full=" << full_nmi << " warm=" << warm_nmi;
}

TEST_F(UpdateTest, RefitOnUnchangedDatasetConvergesImmediately) {
  RefitOptions options;
  options.config = testing::PlantedFixtureConfig(905);
  auto refit = Engine::Refit(*base_, *base_model_, options);
  ASSERT_TRUE(refit.ok()) << refit.status().ToString();
  // Warm-started at the converged iterate with carried gamma, the outer
  // loop's gamma step has nothing to move: it must stop at the tolerance
  // well before the iteration cap.
  EXPECT_TRUE(refit.value().report.converged);
  EXPECT_LT(refit.value().report.outer_iterations,
            options.config.outer_iterations);
}

TEST_F(UpdateTest, RefitValidatesInputs) {
  RefitOptions options;
  options.config = testing::PlantedFixtureConfig(906);
  // A refit cannot shrink: the previous model covers more nodes than the
  // dataset.
  FitOptions base_options;
  base_options.attributes = {"text"};
  base_options.config = testing::PlantedFixtureConfig(907);
  auto fullfit = Engine::Fit(full_->dataset, base_options);
  ASSERT_TRUE(fullfit.ok()) << fullfit.status().ToString();
  auto shrunk = Engine::Refit(*base_, fullfit.value().model, options);
  EXPECT_EQ(shrunk.status().code(), StatusCode::kInvalidArgument);

  RefitOptions bad;
  bad.config = testing::PlantedFixtureConfig(908);
  bad.seed_sweeps = 0;
  EXPECT_EQ(Engine::Refit(full_->dataset, *base_model_, bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(UpdateTest, ApplyUpdatesGrowsModelInPlace) {
  Dataset dataset = *base_;
  Model model = *base_model_;
  const size_t base_nodes = dataset.network.num_nodes();
  const Matrix before = model.theta;

  const NetworkDelta& delta = *remainder_;
  auto report = ApplyUpdates(&dataset, &model, {&delta, 1});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(dataset.network.num_nodes(),
            full_->dataset.network.num_nodes());
  EXPECT_EQ(model.num_nodes(), dataset.network.num_nodes());
  EXPECT_EQ(report.value().deltas_applied, 1u);
  EXPECT_EQ(report.value().new_nodes, delta.nodes.size());
  EXPECT_GE(report.value().touched_nodes, delta.nodes.size());
  ExpectRowsOnSimplex(model.theta);
  EXPECT_TRUE(model.ValidateAgainst(dataset.network).ok());

  // Rows never touched by the delta (no new out-link, no new observation)
  // must be bitwise untouched.
  std::vector<bool> touched(base_nodes, false);
  for (const DeltaLink& link : delta.links) {
    if (link.src < base_nodes) touched[link.src] = true;
  }
  for (const DeltaObservation& obs : delta.observations) {
    if (obs.node < base_nodes) touched[obs.node] = true;
  }
  for (size_t v = 0; v < base_nodes; ++v) {
    if (touched[v]) continue;
    for (size_t k = 0; k < model.num_clusters(); ++k) {
      EXPECT_EQ(model.theta(v, k), before(v, k)) << "v=" << v;
    }
  }
}

TEST_F(UpdateTest, ApplyUpdatesIsBatchSplitInvariant) {
  // The same growth applied as one delta or replayed node-by-node (each
  // batch sliced from the full dataset) must produce identical model
  // state: the Jacobi rounds see the same final dataset either way, and
  // the touched set is the union.
  Dataset one_dataset = *base_;
  Model one_model = *base_model_;
  UpdateOptions options;
  options.refresh_components = true;
  auto one = ApplyUpdates(&one_dataset, &one_model, {remainder_, 1},
                          options);
  ASSERT_TRUE(one.ok()) << one.status().ToString();

  // Split the remainder into two cuts through an intermediate slice.
  const size_t base_nodes = base_->network.num_nodes();
  const size_t total = full_->dataset.network.num_nodes();
  const size_t mid = base_nodes + (total - base_nodes) / 2;
  NetworkDelta second;
  auto mid_dataset = SliceDatasetPrefix(full_->dataset, mid, &second);
  ASSERT_TRUE(mid_dataset.ok()) << mid_dataset.status().ToString();
  NetworkDelta first;
  auto mid_base = SliceDatasetPrefix(mid_dataset.value(), base_nodes,
                                     &first);
  ASSERT_TRUE(mid_base.ok()) << mid_base.status().ToString();

  Dataset two_dataset = *base_;
  Model two_model = *base_model_;
  std::vector<NetworkDelta> deltas = {std::move(first), std::move(second)};
  auto two = ApplyUpdates(&two_dataset, &two_model, deltas, options);
  ASSERT_TRUE(two.ok()) << two.status().ToString();

  ASSERT_EQ(one_model.num_nodes(), two_model.num_nodes());
  EXPECT_EQ(one_model.Fingerprint(), two_model.Fingerprint());
}

TEST_F(UpdateTest, ApplyUpdatesValidatesInputs) {
  Dataset dataset = *base_;
  Model model = *base_model_;
  const NetworkDelta& delta = *remainder_;

  UpdateOptions bad;
  bad.rounds = 0;
  EXPECT_EQ(ApplyUpdates(&dataset, &model, {&delta, 1}, bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Model/dataset node-count mismatch: streaming requires them in sync.
  Dataset grown = *base_;
  auto pre = ApplyNetworkDelta(grown, delta);
  ASSERT_TRUE(pre.ok());
  grown = std::move(pre).value();
  Model stale = *base_model_;
  EXPECT_EQ(ApplyUpdates(&grown, &stale, {&delta, 1}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace genclus
