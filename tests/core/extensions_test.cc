// Tests for the extension APIs: BIC/AIC model selection, fold-in
// membership inference, and cluster interpretation.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "core/engine.h"
#include "core/inference.h"
#include "core/interpret.h"
#include "core/model_selection.h"
#include "prob/simplex.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

GenClusConfig FastConfig() {
  GenClusConfig config;
  config.num_clusters = 2;
  config.outer_iterations = 4;
  config.em_iterations = 40;
  config.num_init_seeds = 3;
  config.seed = 11;
  return config;
}

FitOptions FastOptions() {
  FitOptions options;
  options.attributes = {"text"};
  options.config = FastConfig();
  return options;
}

Model FitModel(const Dataset& dataset) {
  auto fit = Engine::Fit(dataset, FastOptions());
  EXPECT_TRUE(fit.ok()) << fit.status().ToString();
  return std::move(fit).value().model;
}

TEST(ModelSelectionTest, ParameterCountFormula) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 201);
  // n nodes * (K-1) + K * (vocab-1) + |R|.
  const double n = fixture.dataset.network.num_nodes();
  EXPECT_DOUBLE_EQ(CountModelParameters(fixture.dataset, {"text"}, 2),
                   n * 1.0 + 2.0 * 3.0 + 3.0);
  EXPECT_DOUBLE_EQ(CountModelParameters(fixture.dataset, {"text"}, 4),
                   n * 3.0 + 4.0 * 3.0 + 3.0);
}

TEST(ModelSelectionTest, PrefersPlantedClusterCount) {
  auto fixture = MakeTwoCommunityNetwork(10, 1.0, 203);
  auto selection = SelectNumClusters(fixture.dataset, {"text"},
                                     FastConfig(), 2, 4,
                                     SelectionCriterion::kBic);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  ASSERT_EQ(selection->entries.size(), 3u);
  // Two planted communities with disjoint vocabularies: K=2 should win
  // under BIC (more clusters buy little likelihood at a parameter cost).
  EXPECT_EQ(selection->best_num_clusters, 2u);
  for (const auto& entry : selection->entries) {
    EXPECT_TRUE(std::isfinite(entry.score));
    EXPECT_GT(entry.num_parameters, 0.0);
  }
}

TEST(ModelSelectionTest, AicAndBicBothComputed) {
  auto fixture = MakeTwoCommunityNetwork(5, 1.0, 205);
  auto aic = SelectNumClusters(fixture.dataset, {"text"}, FastConfig(), 2,
                               3, SelectionCriterion::kAic);
  auto bic = SelectNumClusters(fixture.dataset, {"text"}, FastConfig(), 2,
                               3, SelectionCriterion::kBic);
  ASSERT_TRUE(aic.ok() && bic.ok());
  // Same likelihoods, different penalties.
  EXPECT_DOUBLE_EQ(aic->entries[0].log_likelihood,
                   bic->entries[0].log_likelihood);
  EXPECT_NE(aic->entries[0].score, bic->entries[0].score);
}

TEST(ModelSelectionTest, RejectsBadInputs) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 207);
  EXPECT_FALSE(SelectNumClusters(fixture.dataset, {"text"}, FastConfig(),
                                 1, 3)
                   .ok());
  EXPECT_FALSE(SelectNumClusters(fixture.dataset, {"text"}, FastConfig(),
                                 4, 3)
                   .ok());
  EXPECT_FALSE(SelectNumClusters(fixture.dataset, {"ghost"}, FastConfig(),
                                 2, 3)
                   .ok());
}

class InferenceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeTwoCommunityNetwork(8, 1.0, 209);
    auto fit = Engine::Fit(fixture_.dataset, FastOptions());
    ASSERT_TRUE(fit.ok());
    model_ = std::move(fit).value().model;
    // Which cluster did community 0 land in?
    community0_cluster_ = static_cast<uint32_t>(
        ArgMax(model_.theta.RowVector(fixture_.docs[0])));
  }

  testing::TwoCommunityNetwork fixture_;
  Model model_;
  uint32_t community0_cluster_ = 0;
};

TEST_F(InferenceFixture, LinksAloneAssignCorrectCluster) {
  // A new doc linked to three community-0 docs, no text.
  std::vector<NewObjectLink> links;
  for (int i = 0; i < 3; ++i) {
    links.push_back({fixture_.docs[i], fixture_.doc_doc, 1.0});
  }
  auto theta = InferMembership(fixture_.dataset.network, model_, links, {});
  ASSERT_TRUE(theta.ok()) << theta.status().ToString();
  EXPECT_TRUE(IsOnSimplex(*theta, 1e-9));
  EXPECT_EQ(ArgMax(*theta), community0_cluster_);
}

TEST_F(InferenceFixture, TextAloneAssignsCorrectCluster) {
  // Terms {2,3} belong to community 1.
  std::vector<NewObjectObservation> obs;
  obs.push_back(
      NewObjectObservation::Categorical(0, /*term=*/2, /*count=*/3.0));
  obs.push_back(
      NewObjectObservation::Categorical(0, /*term=*/3, /*count=*/3.0));
  auto theta = InferMembership(fixture_.dataset.network, model_, {}, obs);
  ASSERT_TRUE(theta.ok());
  EXPECT_NE(ArgMax(*theta), community0_cluster_);
}

TEST_F(InferenceFixture, LinksAndTextCombine) {
  std::vector<NewObjectLink> links = {
      {fixture_.docs[0], fixture_.doc_doc, 2.0}};
  const NewObjectObservation o = NewObjectObservation::Categorical(
      0, /*term=*/0 /* community-0 term */, /*count=*/2.0);
  auto theta = InferMembership(fixture_.dataset.network, model_, links, {o});
  ASSERT_TRUE(theta.ok());
  EXPECT_EQ(ArgMax(*theta), community0_cluster_);
  // Stronger evidence than links alone.
  auto links_only =
      InferMembership(fixture_.dataset.network, model_, links, {});
  ASSERT_TRUE(links_only.ok());
  EXPECT_GE((*theta)[community0_cluster_],
            (*links_only)[community0_cluster_] - 1e-9);
}

TEST_F(InferenceFixture, NoEvidenceIsUniform) {
  auto theta = InferMembership(fixture_.dataset.network, model_, {}, {});
  ASSERT_TRUE(theta.ok());
  EXPECT_NEAR((*theta)[0], 0.5, 1e-9);
  EXPECT_NEAR((*theta)[1], 0.5, 1e-9);
}

TEST_F(InferenceFixture, RejectsBadReferences) {
  EXPECT_FALSE(InferMembership(fixture_.dataset.network, model_,
                               {{9999, fixture_.doc_doc, 1.0}}, {})
                   .ok());
  EXPECT_FALSE(InferMembership(fixture_.dataset.network, model_,
                               {{fixture_.docs[0], 99, 1.0}}, {})
                   .ok());
  EXPECT_FALSE(InferMembership(fixture_.dataset.network, model_,
                               {{fixture_.docs[0], fixture_.doc_doc, -1.0}},
                               {})
                   .ok());
  const NewObjectObservation bad = NewObjectObservation::Categorical(42, 0);
  EXPECT_FALSE(
      InferMembership(fixture_.dataset.network, model_, {}, {bad}).ok());
}

TEST(InterpretTest, TopTermsIdentifyCommunityVocabulary) {
  auto fixture = MakeTwoCommunityNetwork(10, 1.0, 211);
  Model model = FitModel(fixture.dataset);
  auto top = TopTermsPerCluster(fixture.dataset.attributes[0],
                                model.components[0], 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  // Each cluster's top-2 terms must be one community's pair {0,1} or {2,3}.
  for (const auto& terms : *top) {
    ASSERT_EQ(terms.size(), 2u);
    const uint32_t lo = std::min(terms[0].term, terms[1].term);
    const uint32_t hi = std::max(terms[0].term, terms[1].term);
    EXPECT_TRUE((lo == 0 && hi == 1) || (lo == 2 && hi == 3))
        << lo << "," << hi;
    EXPECT_GT(terms[0].lift, 1.0);
  }
}

TEST(InterpretTest, RepresentativeObjectsAreConcentrated) {
  auto fixture = MakeTwoCommunityNetwork(10, 1.0, 213);
  Model model = FitModel(fixture.dataset);
  auto reps = RepresentativeObjects(fixture.dataset.network, model.theta,
                                    3);
  ASSERT_TRUE(reps.ok());
  ASSERT_EQ(reps->size(), 2u);
  for (size_t k = 0; k < 2; ++k) {
    ASSERT_FALSE((*reps)[k].empty());
    // The first representative is at least as concentrated as the rest.
    const double first = model.theta((*reps)[k][0], k);
    for (NodeId v : (*reps)[k]) {
      EXPECT_LE(model.theta(v, k), first + 1e-12);
      EXPECT_EQ(ArgMax(model.theta.RowVector(v)), k);
    }
  }
}

TEST(InterpretTest, RepresentativeObjectsFilterByType) {
  auto fixture = MakeTwoCommunityNetwork(6, 1.0, 215);
  Model model = FitModel(fixture.dataset);
  auto reps = RepresentativeObjects(fixture.dataset.network, model.theta,
                                    10, fixture.tag_type);
  ASSERT_TRUE(reps.ok());
  size_t total = 0;
  for (const auto& cluster : *reps) {
    for (NodeId v : cluster) {
      EXPECT_EQ(fixture.dataset.network.node_type(v), fixture.tag_type);
      ++total;
    }
  }
  EXPECT_EQ(total, 2u);  // both tags assigned somewhere
}

TEST(InterpretTest, RejectsBadInputs) {
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, 217);
  Model model = FitModel(fixture.dataset);
  Attribute numerical =
      Attribute::Numerical("x", fixture.dataset.network.num_nodes());
  EXPECT_FALSE(
      TopTermsPerCluster(numerical, model.components[0], 3).ok());
  Matrix wrong(3, 2, 0.5);
  EXPECT_FALSE(
      RepresentativeObjects(fixture.dataset.network, wrong, 3).ok());
}

}  // namespace
}  // namespace genclus
