// Thread-invariance guarantee of training: Engine::Fit produces a
// bitwise-identical Model for any pool size. Both phases of the outer
// loop reduce over fixed-grain blocks merged in block order (EM sweep in
// core/em.cc, strength learning via ParallelForReduce), so the fitted
// Theta, beta, Gaussians and hard labels must not depend on
// GenClusConfig::num_threads — the property that makes models reproducible
// across machines with different core counts.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

class FitInvarianceFixture : public ::testing::Test {
 protected:
  // 80 docs per side -> 162 nodes: more than one 128-node reduction
  // block, so the cross-block accumulator merge is exercised, not just
  // the single-block degenerate case.
  static constexpr size_t kDocsPerSide = 80;

  void SetUp() override {
    fixture_ = MakeTwoCommunityNetwork(kDocsPerSide, 0.7, 811);
    // A numerical attribute rides along so the Gaussian update path is
    // covered too; half the docs per community carry values (incomplete).
    const size_t n = fixture_.dataset.network.num_nodes();
    Attribute temperature = Attribute::Numerical("temperature", n);
    Rng rng(812);
    for (size_t i = 0; i < kDocsPerSide; i += 2) {
      (void)temperature.AddValue(fixture_.docs[i], rng.Gaussian(1.0, 0.3));
      (void)temperature.AddValue(fixture_.docs[kDocsPerSide + i],
                                 rng.Gaussian(4.0, 0.3));
    }
    fixture_.dataset.attributes.push_back(std::move(temperature));
  }

  Result<FitResult> FitWithThreads(size_t num_threads) {
    FitOptions options;
    options.attributes = {"text", "temperature"};
    options.config = testing::PlantedFixtureConfig(813);
    options.config.num_threads = num_threads;
    return Engine::Fit(fixture_.dataset, options);
  }

  testing::TwoCommunityNetwork fixture_;
};

TEST_F(FitInvarianceFixture, ModelIsBitwiseIdenticalAcrossPoolSizes) {
  auto baseline = FitWithThreads(1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const Model& want = baseline->model;

  for (size_t threads : {2u, 8u}) {
    auto fit = FitWithThreads(threads);
    ASSERT_TRUE(fit.ok()) << fit.status().ToString();
    const Model& got = fit->model;

    EXPECT_EQ(got.theta.data(), want.theta.data())
        << threads << " threads: Theta drifted";
    EXPECT_EQ(got.gamma, want.gamma) << threads << " threads: gamma drifted";
    ASSERT_EQ(got.components.size(), want.components.size());
    for (size_t t = 0; t < want.components.size(); ++t) {
      if (want.components[t].kind() == AttributeKind::kCategorical) {
        EXPECT_EQ(got.components[t].beta().data(),
                  want.components[t].beta().data())
            << threads << " threads: beta[" << t << "] drifted";
      } else {
        for (size_t k = 0; k < want.components[t].num_clusters(); ++k) {
          EXPECT_EQ(got.components[t].gaussian(k).mean(),
                    want.components[t].gaussian(k).mean())
              << threads << " threads: mu[" << t << "," << k << "]";
          EXPECT_EQ(got.components[t].gaussian(k).variance(),
                    want.components[t].gaussian(k).variance())
              << threads << " threads: sigma2[" << t << "," << k << "]";
        }
      }
    }
    EXPECT_EQ(got.HardLabels(), want.HardLabels())
        << threads << " threads: hard labels drifted";
  }
}

TEST_F(FitInvarianceFixture, ReportedObjectiveIsInvariantToo) {
  auto serial = FitWithThreads(1);
  auto pooled = FitWithThreads(8);
  ASSERT_TRUE(serial.ok() && pooled.ok());
  EXPECT_EQ(serial->report.objective, pooled->report.objective);
  EXPECT_EQ(serial->report.outer_iterations, pooled->report.outer_iterations);
}

}  // namespace
}  // namespace genclus
