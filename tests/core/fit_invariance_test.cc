// Thread- and shard-invariance guarantee of training: Engine::Fit
// produces a bitwise-identical Model for any pool size and any Θ
// column-shard count. Both phases of the outer loop reduce over
// fixed-grain blocks merged in block order (EM sweep in core/em.cc,
// strength learning via ParallelForReduce), and the sharded link term
// merges its per-shard partials in ascending shard order, replaying the
// monolithic left-to-right accumulation chain. So the fitted Theta,
// beta, Gaussians and hard labels must not depend on
// GenClusConfig::num_threads or GenClusConfig::theta_shards — the
// property that makes models reproducible across machines.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

class FitInvarianceFixture : public ::testing::Test {
 protected:
  // 80 docs per side -> 162 nodes: more than one 128-node reduction
  // block, so the cross-block accumulator merge is exercised, not just
  // the single-block degenerate case.
  static constexpr size_t kDocsPerSide = 80;

  void SetUp() override {
    fixture_ = MakeTwoCommunityNetwork(kDocsPerSide, 0.7, 811);
    // A numerical attribute rides along so the Gaussian update path is
    // covered too; half the docs per community carry values (incomplete).
    const size_t n = fixture_.dataset.network.num_nodes();
    Attribute temperature = Attribute::Numerical("temperature", n);
    Rng rng(812);
    for (size_t i = 0; i < kDocsPerSide; i += 2) {
      (void)temperature.AddValue(fixture_.docs[i], rng.Gaussian(1.0, 0.3));
      (void)temperature.AddValue(fixture_.docs[kDocsPerSide + i],
                                 rng.Gaussian(4.0, 0.3));
    }
    fixture_.dataset.attributes.push_back(std::move(temperature));
  }

  Result<FitResult> FitWith(size_t num_threads, size_t theta_shards = 1) {
    FitOptions options;
    options.attributes = {"text", "temperature"};
    options.config = testing::PlantedFixtureConfig(813);
    options.config.num_threads = num_threads;
    options.config.theta_shards = theta_shards;
    return Engine::Fit(fixture_.dataset, options);
  }

  // Bitwise model equality: Theta, gamma, every component, hard labels.
  static void ExpectModelsBitwiseEqual(const Model& got, const Model& want,
                                       const std::string& label) {
    EXPECT_EQ(got.theta.data(), want.theta.data())
        << label << ": Theta drifted";
    EXPECT_EQ(got.gamma, want.gamma) << label << ": gamma drifted";
    ASSERT_EQ(got.components.size(), want.components.size());
    for (size_t t = 0; t < want.components.size(); ++t) {
      if (want.components[t].kind() == AttributeKind::kCategorical) {
        EXPECT_EQ(got.components[t].beta().data(),
                  want.components[t].beta().data())
            << label << ": beta[" << t << "] drifted";
      } else {
        for (size_t k = 0; k < want.components[t].num_clusters(); ++k) {
          EXPECT_EQ(got.components[t].gaussian(k).mean(),
                    want.components[t].gaussian(k).mean())
              << label << ": mu[" << t << "," << k << "]";
          EXPECT_EQ(got.components[t].gaussian(k).variance(),
                    want.components[t].gaussian(k).variance())
              << label << ": sigma2[" << t << "," << k << "]";
        }
      }
    }
    EXPECT_EQ(got.HardLabels(), want.HardLabels())
        << label << ": hard labels drifted";
  }

  testing::TwoCommunityNetwork fixture_;
};

TEST_F(FitInvarianceFixture, ModelIsBitwiseIdenticalAcrossPoolSizes) {
  auto baseline = FitWith(1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (size_t threads : {2u, 8u}) {
    auto fit = FitWith(threads);
    ASSERT_TRUE(fit.ok()) << fit.status().ToString();
    ExpectModelsBitwiseEqual(fit->model, baseline->model,
                             std::to_string(threads) + " threads");
  }
}

TEST_F(FitInvarianceFixture, ModelIsBitwiseIdenticalAcrossShardCounts) {
  // The full tentpole grid: Θ shards {1,2,4} x pool sizes {1,2,8} all
  // reproduce the unsharded serial model bit for bit. 162 nodes across 4
  // shards gives ~41-node column ranges, so rows genuinely split.
  auto baseline = FitWith(1, /*theta_shards=*/1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (size_t shards : {2u, 4u}) {
    for (size_t threads : {1u, 2u, 8u}) {
      auto fit = FitWith(threads, shards);
      ASSERT_TRUE(fit.ok()) << fit.status().ToString();
      ExpectModelsBitwiseEqual(fit->model, baseline->model,
                               std::to_string(shards) + " shards / " +
                                   std::to_string(threads) + " threads");
      // The fit stamps the shard count it ran with; the baseline keeps 1.
      EXPECT_EQ(fit->model.theta_shards, shards);
    }
  }
  EXPECT_EQ(baseline->model.theta_shards, 1u);
}

TEST_F(FitInvarianceFixture, ReportedObjectiveIsInvariantToo) {
  auto serial = FitWith(1);
  auto pooled = FitWith(8, /*theta_shards=*/4);
  ASSERT_TRUE(serial.ok() && pooled.ok());
  EXPECT_EQ(serial->report.objective, pooled->report.objective);
  EXPECT_EQ(serial->report.outer_iterations, pooled->report.outer_iterations);
}

}  // namespace
}  // namespace genclus
