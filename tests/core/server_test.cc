// The micro-batching serving tier (core/server.h) and the Submit
// lifetime fixes:
//   * per-query answers bitwise identical to Engine::InferBatch no matter
//     how the admission loop batches them, including under N producers x
//     M submissions of mixed valid/invalid queries (status isolation);
//   * backpressure: a full queue rejects with kResourceExhausted
//     immediately instead of blocking;
//   * clean shutdown with a non-empty queue — draining by default,
//     failing fast with kCancelled when drain_on_stop is off;
//   * destroying a Server with pending SubmitBatch futures is safe (the
//     old Engine::Submit std::async path dangled its captured ServeState
//     — ASan/TSan cover this regression in CI);
//   * concurrent Engine::Execute calls (per-caller sessions, no global
//     execution mutex) stay bitwise equal to the reference path;
//   * ServerStats observability: counters, batch-size histogram, queue
//     high-water, latency summaries.
#include "core/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/inference.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

// Shared trained state: fitting once per suite keeps the file fast.
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new testing::TwoCommunityNetwork(
        MakeTwoCommunityNetwork(8, 1.0, 501));
    FitOptions options;
    options.attributes = {"text"};
    options.config = testing::PlantedFixtureConfig(502);
    auto fit = Engine::Fit(fixture_->dataset, options);
    ASSERT_TRUE(fit.ok()) << fit.status().ToString();
    model_ = new Model(std::move(fit).value().model);
  }

  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete fixture_;
    fixture_ = nullptr;
  }

  static std::unique_ptr<Server> MakeServer(ServerOptions options) {
    auto server =
        Server::Create(&fixture_->dataset.network, model_, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  // A small pool of distinct queries with precomputed reference answers:
  // index % 3 == 2 queries are invalid (unknown link type).
  struct QueryPool {
    std::vector<NewObjectQuery> queries;
    std::vector<Result<std::vector<double>>> reference;
  };

  static QueryPool MakeQueryPool(size_t count) {
    QueryPool pool;
    for (size_t i = 0; i < count; ++i) {
      NewObjectQuery q;
      if (i % 3 == 2) {
        q.links.push_back({fixture_->docs[0], 99, 1.0});  // invalid type
      } else {
        q.links.push_back(
            {fixture_->docs[i % fixture_->docs.size()], fixture_->doc_doc,
             1.0 + static_cast<double>(i % 4)});
        q.observations.push_back(NewObjectObservation::Categorical(
            0, static_cast<uint32_t>(i % 4)));
      }
      pool.reference.push_back(
          InferMembership(fixture_->dataset.network, *model_, q.links,
                          q.observations));
      pool.queries.push_back(std::move(q));
    }
    return pool;
  }

  static void ExpectMatchesReference(
      const QueryResult& answer,
      const Result<std::vector<double>>& reference) {
    ASSERT_EQ(answer.status, reference.status());
    if (!reference.ok()) return;
    ASSERT_EQ(answer.membership.size(), reference.value().size());
    for (size_t k = 0; k < answer.membership.size(); ++k) {
      // Bitwise: the tier must not perturb the planned pipeline.
      EXPECT_EQ(answer.membership[k], reference.value()[k]) << "k=" << k;
    }
  }

  static testing::TwoCommunityNetwork* fixture_;
  static Model* model_;
};

testing::TwoCommunityNetwork* ServerTest::fixture_ = nullptr;
Model* ServerTest::model_ = nullptr;

TEST_F(ServerTest, CreateValidatesOptionsAndModel) {
  ServerOptions bad;
  bad.max_batch = 0;
  auto server = Server::Create(&fixture_->dataset.network, model_, bad);
  EXPECT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);

  auto null_model = Server::Create(&fixture_->dataset.network,
                                   static_cast<const Model*>(nullptr), {});
  EXPECT_FALSE(null_model.ok());
}

TEST_F(ServerTest, SingleQueryMatchesInferBatchBitwise) {
  ServerOptions options;
  options.num_workers = 2;
  auto server = MakeServer(options);
  QueryPool pool = MakeQueryPool(6);
  std::vector<std::future<QueryResult>> futures;
  for (const NewObjectQuery& q : pool.queries) {
    auto submitted = server->Submit(q);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(submitted).value());
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectMatchesReference(futures[i].get(), pool.reference[i]);
  }
  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.accepted, pool.queries.size());
  EXPECT_EQ(stats.completed, pool.queries.size());
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(ServerTest, ConcurrentProducersMixedValidityStatusIsolation) {
  // The satellite stress: N producers x M submissions of mixed
  // valid/invalid queries through one server. Every future must carry
  // exactly its own query's status/answer (no cross-query poisoning) and
  // match the reference path bitwise, whatever micro-batching happened.
  constexpr size_t kProducers = 4;
  constexpr size_t kPerProducer = 60;
  ServerOptions options;
  options.num_workers = 3;
  options.max_batch = 8;
  options.max_wait_us = 100;
  options.queue_capacity = 512;
  auto server = MakeServer(options);
  QueryPool pool = MakeQueryPool(12);

  struct Outcome {
    size_t pool_index;
    std::future<QueryResult> future;
  };
  std::vector<std::vector<Outcome>> outcomes(kProducers);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        const size_t index = (p * kPerProducer + i) % pool.queries.size();
        for (;;) {
          auto submitted = server->Submit(pool.queries[index]);
          if (submitted.ok()) {
            outcomes[p].push_back({index, std::move(submitted).value()});
            break;
          }
          // Backpressure is an expected, retryable outcome here.
          ASSERT_EQ(submitted.status().code(),
                    StatusCode::kResourceExhausted);
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  size_t valid = 0;
  for (std::vector<Outcome>& produced : outcomes) {
    for (Outcome& outcome : produced) {
      ExpectMatchesReference(outcome.future.get(),
                             pool.reference[outcome.pool_index]);
      if (pool.reference[outcome.pool_index].ok()) ++valid;
    }
  }
  EXPECT_GT(valid, 0u);
  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.completed, kProducers * kPerProducer);
  EXPECT_GE(stats.batches, 1u);
  // Histogram total must account for every executed micro-batch.
  size_t histogram_batches = 0;
  size_t histogram_queries = 0;
  for (size_t s = 0; s < stats.batch_size_histogram.size(); ++s) {
    histogram_batches += stats.batch_size_histogram[s];
    histogram_queries += s * stats.batch_size_histogram[s];
  }
  EXPECT_EQ(histogram_batches, stats.batches);
  EXPECT_EQ(histogram_queries, stats.completed);
  EXPECT_GE(stats.queue_high_water, 1u);
  EXPECT_EQ(stats.end_to_end.count, stats.completed);
  EXPECT_GE(stats.end_to_end.p99_us, stats.end_to_end.p50_us);
}

TEST_F(ServerTest, QueueFullRejectsImmediatelyWithResourceExhausted) {
  // One worker wedged on a deliberately expensive query + capacity 2:
  // while it grinds, the queue fills and further Submits must reject
  // immediately (never block).
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.max_batch = 1;  // the slow query must not coalesce helpers
  options.max_wait_us = 0;
  auto server = MakeServer(options);

  NewObjectQuery slow;
  slow.links.push_back({fixture_->docs[0], fixture_->doc_doc, 1.0});
  for (int i = 0; i < 200000; ++i) {
    slow.observations.push_back(NewObjectObservation::Categorical(
        0, static_cast<uint32_t>(i % 4)));
  }
  auto wedge = server->Submit(slow);
  ASSERT_TRUE(wedge.ok());

  NewObjectQuery quick;
  quick.links.push_back({fixture_->docs[1], fixture_->doc_doc, 1.0});
  // Fill the queue and then observe a rejection. The worker may steal an
  // item between pushes, so push until the immediate-failure shows up;
  // with the worker wedged for many milliseconds this terminates at once
  // in practice, and the attempt cap keeps the test bounded regardless.
  std::vector<std::future<QueryResult>> admitted;
  bool saw_rejection = false;
  for (int attempt = 0; attempt < 10000 && !saw_rejection; ++attempt) {
    auto submitted = server->Submit(quick);
    if (submitted.ok()) {
      admitted.push_back(std::move(submitted).value());
    } else {
      EXPECT_EQ(submitted.status().code(), StatusCode::kResourceExhausted);
      saw_rejection = true;
    }
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GE(server->Stats().rejected, 1u);
  // Drain: everything admitted still completes.
  EXPECT_TRUE(wedge->get().ok());
  for (std::future<QueryResult>& f : admitted) EXPECT_TRUE(f.get().ok());
}

TEST_F(ServerTest, StopDrainsNonEmptyQueueByDefault) {
  ServerOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  auto server = MakeServer(options);
  QueryPool pool = MakeQueryPool(9);
  std::vector<std::future<QueryResult>> futures;
  for (int round = 0; round < 5; ++round) {
    for (const NewObjectQuery& q : pool.queries) {
      auto submitted = server->Submit(q);
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
  }
  // Stop with (very likely) queued work: drain semantics demand every
  // admitted request still gets a real answer.
  server->Stop();
  for (size_t i = 0; i < futures.size(); ++i) {
    ExpectMatchesReference(futures[i].get(),
                           pool.reference[i % pool.queries.size()]);
  }
  // A stopped server rejects new work with kFailedPrecondition.
  auto late = server->Submit(pool.queries[0]);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServerTest, NonDrainingStopCancelsQueuedRequests) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_batch = 2;
  options.drain_on_stop = false;
  auto server = MakeServer(options);
  QueryPool pool = MakeQueryPool(3);
  std::vector<std::future<QueryResult>> futures;
  for (int round = 0; round < 40; ++round) {
    for (const NewObjectQuery& q : pool.queries) {
      auto submitted = server->Submit(q);
      if (submitted.ok()) futures.push_back(std::move(submitted).value());
    }
  }
  server->Stop();
  size_t cancelled = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    QueryResult answer = futures[i].get();  // every future must resolve
    if (answer.status.code() == StatusCode::kCancelled) {
      ++cancelled;
    } else {
      ExpectMatchesReference(answer,
                             pool.reference[i % pool.queries.size()]);
    }
  }
  EXPECT_EQ(server->Stats().cancelled, cancelled);
}

TEST_F(ServerTest, SubmitBatchAssemblesInferenceResultBitwise) {
  ServerOptions options;
  options.num_workers = 2;
  options.max_batch = 2;  // force the batch to scatter across micro-batches
  options.max_wait_us = 0;
  auto server = MakeServer(options);
  QueryPool pool = MakeQueryPool(7);

  EngineOptions engine_options;
  engine_options.num_threads = 1;
  auto engine = Engine::Create(&fixture_->dataset.network, *model_,
                               engine_options);
  ASSERT_TRUE(engine.ok());
  const InferenceResult expected =
      engine->Execute(engine->Plan(pool.queries));

  std::future<InferenceResult> future = server->SubmitBatch(pool.queries);
  const InferenceResult actual = future.get();
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(actual.memberships.data(), expected.memberships.data());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual.statuses[i], expected.statuses[i]) << "query " << i;
    EXPECT_EQ(actual.hard_labels[i], expected.hard_labels[i]);
  }
  EXPECT_EQ(actual.report.batch_size, pool.queries.size());
  EXPECT_EQ(actual.report.valid_queries, expected.report.valid_queries);
  EXPECT_EQ(actual.report.total_links, expected.report.total_links);
  EXPECT_EQ(actual.report.total_observations,
            expected.report.total_observations);

  std::future<InferenceResult> empty = server->SubmitBatch({});
  EXPECT_EQ(empty.get().size(), 0u);
}

TEST_F(ServerTest, ServerDestructionWithPendingSubmitBatchIsSafe) {
  // Regression for the PR 5 Submit hazard: a pending std::async future
  // captured the engine's heap ServeState, so destroying the owner with
  // the future in flight was a use-after-free. SubmitBatch rides the
  // draining queue: the server destructor completes every outstanding
  // submission before tearing anything down, and the futures stay valid
  // afterwards (their shared state is independent). ASan/TSan jobs in CI
  // watch this test.
  QueryPool pool = MakeQueryPool(6);

  std::vector<std::future<InferenceResult>> pending;
  {
    ServerOptions options;
    options.num_workers = 2;
    auto server = MakeServer(options);
    for (int i = 0; i < 8; ++i) {
      pending.push_back(server->SubmitBatch(pool.queries));
    }
    // Server destroyed here, submissions very likely still queued.
  }
  for (std::future<InferenceResult>& future : pending) {
    const InferenceResult result = future.get();
    ASSERT_EQ(result.size(), pool.queries.size());
    for (size_t i = 0; i < pool.queries.size(); ++i) {
      ASSERT_EQ(result.statuses[i], pool.reference[i].status());
      if (!pool.reference[i].ok()) continue;
      for (size_t k = 0; k < pool.reference[i].value().size(); ++k) {
        EXPECT_EQ(result.memberships(i, k), pool.reference[i].value()[k]);
      }
    }
  }
}

TEST_F(ServerTest, AnswersBitwiseInvariantToThetaShardsAndWorkers) {
  // Served answers must be bitwise identical across every Θ shard count x
  // worker count combination: the per-shard link terms merge in ascending
  // shard order, replaying the monolithic accumulation chain exactly, and
  // each query's sweep is independent of how micro-batches form.
  QueryPool pool = MakeQueryPool(10);
  std::vector<QueryResult> baseline;
  for (size_t shards : {1, 2, 4}) {
    for (size_t workers : {1, 2, 8}) {
      ServerOptions options;
      options.num_workers = workers;
      options.theta_shards = shards;
      auto server = MakeServer(options);
      std::vector<std::future<QueryResult>> futures;
      for (const NewObjectQuery& q : pool.queries) {
        auto submitted = server->Submit(q);
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        futures.push_back(std::move(submitted).value());
      }
      std::vector<QueryResult> answers;
      for (std::future<QueryResult>& f : futures) {
        answers.push_back(f.get());
      }
      if (baseline.empty()) {
        for (size_t i = 0; i < answers.size(); ++i) {
          ExpectMatchesReference(answers[i], pool.reference[i]);
        }
        baseline = std::move(answers);
        continue;
      }
      for (size_t i = 0; i < answers.size(); ++i) {
        EXPECT_EQ(answers[i].status, baseline[i].status)
            << "shards " << shards << " workers " << workers << " query "
            << i;
        // Bitwise: EXPECT_EQ on the double vectors, no tolerance.
        EXPECT_EQ(answers[i].membership, baseline[i].membership)
            << "shards " << shards << " workers " << workers << " query "
            << i;
        EXPECT_EQ(answers[i].hard_label, baseline[i].hard_label);
      }
    }
  }
}

TEST_F(ServerTest, StatsConcurrentWithLiveTrafficIsRaceFree) {
  // Pin for the PR 7 lock audit: every ServerStats field is
  // GENCLUS_GUARDED_BY(stats_mutex_) and Stats() snapshots the rings
  // under the lock, then summarizes (nth_element over up to 4 x 8192
  // samples) only after releasing it. This test hammers Stats() from
  // dedicated reader threads while producers keep the admission loop and
  // workers busy, so the TSan CI lane observes the reader/writer
  // interleavings and any unguarded field access becomes a hard failure.
  ServerOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  auto server = MakeServer(options);
  QueryPool pool = MakeQueryPool(6);

  std::atomic<bool> stop_readers{false};
  std::atomic<bool> readers_ok{true};
  constexpr size_t kReaders = 2;
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop_readers.load()) {
        const ServerStats stats = server->Stats();
        // Sanity on every snapshot: totals never run ahead of admissions
        // and the histogram keeps its fixed shape.
        if (stats.completed + stats.cancelled > stats.accepted ||
            stats.batch_size_histogram.size() != options.max_batch + 1) {
          readers_ok.store(false);
          return;
        }
      }
    });
  }

  constexpr size_t kProducers = 3;
  constexpr size_t kRounds = 30;
  std::vector<std::thread> producers;
  std::atomic<size_t> accepted{0};
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (size_t round = 0; round < kRounds; ++round) {
        std::vector<std::future<QueryResult>> futures;
        for (const NewObjectQuery& q : pool.queries) {
          auto submitted = server->Submit(q);
          if (!submitted.ok()) continue;  // backpressure is fine here
          accepted.fetch_add(1);
          futures.push_back(std::move(submitted).value());
        }
        for (std::future<QueryResult>& f : futures) f.get();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  stop_readers.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(readers_ok.load());

  // Quiescent now: the drained totals must reconcile exactly.
  const ServerStats final_stats = server->Stats();
  EXPECT_EQ(final_stats.accepted, accepted.load());
  EXPECT_EQ(final_stats.completed, accepted.load());
  EXPECT_EQ(final_stats.cancelled, 0u);
}

TEST_F(ServerTest, ConcurrentEngineExecuteMatchesReference) {
  // With the execution mutex gone, concurrent Execute callers get their
  // own pooled sessions and must still produce bitwise-reference results
  // while genuinely overlapping on one engine (and one thread pool).
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  auto engine = Engine::Create(&fixture_->dataset.network, *model_,
                               engine_options);
  ASSERT_TRUE(engine.ok());
  QueryPool pool = MakeQueryPool(8);
  const InferPlan plan = engine->Plan(pool.queries);

  constexpr size_t kCallers = 4;
  constexpr size_t kRounds = 25;
  std::vector<std::thread> callers;
  std::atomic<bool> ok{true};
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (size_t round = 0; round < kRounds; ++round) {
        const InferenceResult result = engine->Execute(plan);
        for (size_t i = 0; i < pool.queries.size(); ++i) {
          if (result.statuses[i] != pool.reference[i].status()) {
            ok.store(false);
            return;
          }
          if (!pool.reference[i].ok()) continue;
          const std::vector<double>& expected = pool.reference[i].value();
          if (std::memcmp(result.memberships.Row(i), expected.data(),
                          expected.size() * sizeof(double)) != 0) {
            ok.store(false);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace genclus
