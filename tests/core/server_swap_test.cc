// Zero-downtime model hot-swap (Server::SwapModel):
//   * answers track the swap: queries before it are answered (and
//     stamped) by the old model, queries after it by the new one, each
//     bitwise equal to that model's InferMembership reference;
//   * swap under load: producers hammering Submit across repeated swaps
//     lose nothing — every future resolves, every successful answer's
//     model_version maps it to exactly the model whose reference it
//     matches bitwise (no dropped, no mis-attributed requests);
//   * SubmitBatch stamps InferenceResult::model_versions per slot;
//   * SwapModel validates the replacement (null, wrong K, fewer nodes
//     than the network) and a rejected swap leaves serving untouched;
//   * with failpoints compiled in, a worker exception during the
//     post-swap session rebuild ("server.swap_model") fails only that
//     batch with kInternal — the worker keeps serving and rebuilds on
//     the next batch. This file runs in the TSan and failpoints CI lanes.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "core/engine.h"
#include "core/inference.h"
#include "core/server.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

class ServerSwapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new testing::TwoCommunityNetwork(
        MakeTwoCommunityNetwork(8, 1.0, 601));
    FitOptions options;
    options.attributes = {"text"};
    options.config = testing::PlantedFixtureConfig(602);
    auto fit_a = Engine::Fit(fixture_->dataset, options);
    ASSERT_TRUE(fit_a.ok()) << fit_a.status().ToString();
    model_a_ = new Model(std::move(fit_a).value().model);
    // A second, bitwise-distinct model over the same network: a different
    // seed lands in a different iterate of the same planted optimum.
    options.config = testing::PlantedFixtureConfig(603);
    options.config.seed = 604;
    auto fit_b = Engine::Fit(fixture_->dataset, options);
    ASSERT_TRUE(fit_b.ok()) << fit_b.status().ToString();
    model_b_ = new Model(std::move(fit_b).value().model);
  }

  static void TearDownTestSuite() {
    delete model_b_;
    model_b_ = nullptr;
    delete model_a_;
    model_a_ = nullptr;
    delete fixture_;
    fixture_ = nullptr;
  }

  void TearDown() override { Failpoints::DisarmAll(); }

  // Valid queries only, with per-model reference answers.
  struct QueryPool {
    std::vector<NewObjectQuery> queries;
    std::vector<std::vector<double>> reference_a;
    std::vector<std::vector<double>> reference_b;
  };

  static QueryPool MakeQueryPool(size_t count) {
    QueryPool pool;
    for (size_t i = 0; i < count; ++i) {
      NewObjectQuery q;
      q.links.push_back(
          {fixture_->docs[i % fixture_->docs.size()], fixture_->doc_doc,
           1.0 + static_cast<double>(i % 4)});
      q.observations.push_back(NewObjectObservation::Categorical(
          0, static_cast<uint32_t>(i % 4)));
      auto ref_a = InferMembership(fixture_->dataset.network, *model_a_,
                                   q.links, q.observations);
      auto ref_b = InferMembership(fixture_->dataset.network, *model_b_,
                                   q.links, q.observations);
      EXPECT_TRUE(ref_a.ok() && ref_b.ok());
      pool.reference_a.push_back(std::move(ref_a).value());
      pool.reference_b.push_back(std::move(ref_b).value());
      pool.queries.push_back(std::move(q));
    }
    return pool;
  }

  static void ExpectBitwise(const std::vector<double>& membership,
                            const std::vector<double>& reference) {
    ASSERT_EQ(membership.size(), reference.size());
    for (size_t k = 0; k < membership.size(); ++k) {
      EXPECT_EQ(membership[k], reference[k]) << "k=" << k;
    }
  }

  static testing::TwoCommunityNetwork* fixture_;
  static Model* model_a_;
  static Model* model_b_;
};

testing::TwoCommunityNetwork* ServerSwapTest::fixture_ = nullptr;
Model* ServerSwapTest::model_a_ = nullptr;
Model* ServerSwapTest::model_b_ = nullptr;

TEST_F(ServerSwapTest, AnswersAndStatsTrackTheSwap) {
  const QueryPool pool = MakeQueryPool(4);
  ServerOptions options;
  options.num_workers = 1;
  options.max_wait_us = 0;
  auto server =
      Server::Create(&fixture_->dataset.network, model_a_, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Server& srv = *server.value();
  EXPECT_EQ(srv.model_version(), 1u);

  auto before = srv.Submit(pool.queries[0]);
  ASSERT_TRUE(before.ok());
  QueryResult first = before.value().get();
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  ExpectBitwise(first.membership, pool.reference_a[0]);
  EXPECT_EQ(first.model_version, 1u);

  ASSERT_TRUE(srv.SwapModel(*model_b_).ok());
  EXPECT_EQ(srv.model_version(), 2u);
  EXPECT_EQ(srv.model()->Fingerprint(), model_b_->Fingerprint());

  auto after = srv.Submit(pool.queries[0]);
  ASSERT_TRUE(after.ok());
  QueryResult second = after.value().get();
  ASSERT_TRUE(second.ok()) << second.status.ToString();
  ExpectBitwise(second.membership, pool.reference_b[0]);
  EXPECT_EQ(second.model_version, 2u);

  const ServerStats stats = srv.Stats();
  EXPECT_EQ(stats.model_version, 2u);
  EXPECT_EQ(stats.model_fingerprint, model_b_->Fingerprint());
  EXPECT_EQ(stats.model_swaps, 1u);
}

TEST_F(ServerSwapTest, SubmitBatchStampsPerSlotVersions) {
  const QueryPool pool = MakeQueryPool(6);
  ServerOptions options;
  options.num_workers = 1;
  auto server =
      Server::Create(&fixture_->dataset.network, model_a_, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  InferenceResult result =
      server.value()->SubmitBatch(pool.queries).get();
  ASSERT_EQ(result.model_versions.size(), pool.queries.size());
  for (size_t i = 0; i < pool.queries.size(); ++i) {
    EXPECT_TRUE(result.statuses[i].ok());
    EXPECT_EQ(result.model_versions[i], 1u) << "i=" << i;
  }
}

TEST_F(ServerSwapTest, SwapValidatesReplacement) {
  ServerOptions options;
  options.num_workers = 1;
  auto server =
      Server::Create(&fixture_->dataset.network, model_a_, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Server& srv = *server.value();

  EXPECT_EQ(srv.SwapModel(std::shared_ptr<const Model>()).code(),
            StatusCode::kInvalidArgument);

  // Fewer nodes than the serving network: ValidateForServing rejects.
  Model shrunk = *model_a_;
  Matrix fewer(shrunk.theta.rows() - 1, shrunk.theta.cols());
  for (size_t v = 0; v < fewer.rows(); ++v) {
    for (size_t k = 0; k < fewer.cols(); ++k) {
      fewer(v, k) = shrunk.theta(v, k);
    }
  }
  shrunk.theta = std::move(fewer);
  EXPECT_EQ(srv.SwapModel(std::move(shrunk)).code(),
            StatusCode::kInvalidArgument);

  // Wrong K: SubmitBatch preallocates K-wide rows, so the server pins it.
  FitOptions k3;
  k3.attributes = {"text"};
  k3.config = testing::PlantedFixtureConfig(605);
  k3.config.num_clusters = 3;
  auto fit = Engine::Fit(fixture_->dataset, k3);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_EQ(srv.SwapModel(std::move(fit).value().model).code(),
            StatusCode::kInvalidArgument);

  // Every rejected swap left serving untouched.
  EXPECT_EQ(srv.model_version(), 1u);
  EXPECT_EQ(srv.Stats().model_swaps, 0u);
}

// The acceptance gate: producers hammer Submit while the main thread
// swaps A <-> B repeatedly. Every obtained future resolves, every
// successful answer's model_version identifies a model whose reference
// the membership matches bitwise, and the final accounting balances.
TEST_F(ServerSwapTest, SwapUnderLoadDropsAndMisattributesNothing) {
  const size_t kProducers = 4;
  const size_t kPerProducer = 150;
  const size_t kSwaps = 20;
  const QueryPool pool = MakeQueryPool(8);

  ServerOptions options;
  options.num_workers = 3;
  options.queue_capacity = 4096;  // load test: nothing should be rejected
  options.max_wait_us = 50;
  auto server =
      Server::Create(&fixture_->dataset.network, model_a_, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Server& srv = *server.value();

  std::atomic<size_t> submitted{0};
  std::atomic<size_t> resolved{0};
  std::atomic<size_t> wrong{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load()) std::this_thread::yield();
      for (size_t i = 0; i < kPerProducer; ++i) {
        const size_t q = (p * kPerProducer + i) % pool.queries.size();
        auto future = srv.Submit(pool.queries[q]);
        ASSERT_TRUE(future.ok()) << future.status().ToString();
        submitted.fetch_add(1);
        QueryResult answer = future.value().get();
        resolved.fetch_add(1);
        ASSERT_TRUE(answer.ok()) << answer.status.ToString();
        // Version 1 and every odd version is A; even versions are B.
        ASSERT_GE(answer.model_version, 1u);
        const std::vector<double>& reference =
            (answer.model_version % 2 == 1) ? pool.reference_a[q]
                                            : pool.reference_b[q];
        if (answer.membership != reference) wrong.fetch_add(1);
      }
    });
  }
  go.store(true);
  for (size_t s = 0; s < kSwaps; ++s) {
    const Model& next = (s % 2 == 0) ? *model_b_ : *model_a_;
    ASSERT_TRUE(srv.SwapModel(next).ok());
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  for (std::thread& t : producers) t.join();

  EXPECT_EQ(submitted.load(), kProducers * kPerProducer);
  EXPECT_EQ(resolved.load(), submitted.load());  // zero dropped
  EXPECT_EQ(wrong.load(), 0u);                   // zero mis-attributed
  const ServerStats stats = srv.Stats();
  EXPECT_EQ(stats.accepted, submitted.load());
  EXPECT_EQ(stats.completed, submitted.load());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.deadline_shed, 0u);
  EXPECT_EQ(stats.model_swaps, kSwaps);
  EXPECT_EQ(stats.model_version, kSwaps + 1);
}

TEST_F(ServerSwapTest, RebuildFailureFailsOnlyThatBatch) {
  if (!Failpoints::kEnabled) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const QueryPool pool = MakeQueryPool(2);
  ServerOptions options;
  options.num_workers = 1;
  options.max_wait_us = 0;
  auto server =
      Server::Create(&fixture_->dataset.network, model_a_, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Server& srv = *server.value();

  // Build the worker's session on model A first.
  auto warmup = srv.Submit(pool.queries[0]);
  ASSERT_TRUE(warmup.ok());
  ASSERT_TRUE(warmup.value().get().ok());

  ASSERT_TRUE(srv.SwapModel(*model_b_).ok());
  Failpoints::Arm("server.swap_model", {.max_fires = 1});

  // First post-swap batch: the rebuild throws, the batch fails kInternal,
  // the worker survives with its old session.
  auto failed = srv.Submit(pool.queries[0]);
  ASSERT_TRUE(failed.ok());
  QueryResult broken = failed.value().get();
  EXPECT_EQ(broken.status.code(), StatusCode::kInternal);
  EXPECT_EQ(broken.model_version, 0u);  // no model answered it

  // Next batch: the rebuild succeeds and serving resumes on model B.
  auto recovered = srv.Submit(pool.queries[1]);
  ASSERT_TRUE(recovered.ok());
  QueryResult answer = recovered.value().get();
  ASSERT_TRUE(answer.ok()) << answer.status.ToString();
  ExpectBitwise(answer.membership, pool.reference_b[1]);
  EXPECT_EQ(answer.model_version, 2u);
}

}  // namespace
}  // namespace genclus
