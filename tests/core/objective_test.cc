// Objective evaluation: mixture log-likelihoods (Eqs. 3-5) and the g1
// decomposition (Eq. 9).
#include "core/objective.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/feature.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

TEST(ObjectiveTest, CategoricalLikelihoodManualCheck) {
  // One node, two clusters, vocab 2; theta = (0.5, 0.5),
  // beta = [[1, 0], [0, 1]]; observation: term 0 twice.
  // p(term 0) = 0.5 * 1 + 0.5 * 0 = 0.5 => LL = 2 * log 0.5.
  Attribute text = Attribute::Categorical("text", 2, 1);
  (void)text.AddTermCount(0, 0, 2.0);
  auto comp = AttributeComponents::CategoricalUniform(2, 2);
  (*comp.mutable_beta())(0, 0) = 1.0;
  (*comp.mutable_beta())(0, 1) = 0.0;
  (*comp.mutable_beta())(1, 0) = 0.0;
  (*comp.mutable_beta())(1, 1) = 1.0;
  Matrix theta(1, 2, 0.5);
  EXPECT_NEAR(AttributeLogLikelihood(text, comp, theta), 2.0 * std::log(0.5),
              1e-12);
}

TEST(ObjectiveTest, GaussianLikelihoodManualCheck) {
  // One node, one observation at x = 0; two unit Gaussians at 0 and 10;
  // theta = (1, 0) => LL = log N(0 | 0, 1).
  Attribute values = Attribute::Numerical("x", 1);
  (void)values.AddValue(0, 0.0);
  std::vector<GaussianDistribution> gaussians = {
      GaussianDistribution(0.0, 1.0), GaussianDistribution(10.0, 1.0)};
  auto comp = AttributeComponents::Numerical(std::move(gaussians));
  Matrix theta(1, 2);
  theta(0, 0) = 1.0;
  EXPECT_NEAR(AttributeLogLikelihood(values, comp, theta),
              -0.5 * std::log(2.0 * M_PI), 1e-9);
}

TEST(ObjectiveTest, MixtureBeatsWrongComponent) {
  // A node whose observation sits at cluster 0's mean must get a higher
  // likelihood when theta points at cluster 0 than at cluster 1.
  Attribute values = Attribute::Numerical("x", 1);
  (void)values.AddValue(0, 0.0);
  std::vector<GaussianDistribution> gaussians = {
      GaussianDistribution(0.0, 1.0), GaussianDistribution(5.0, 1.0)};
  auto comp = AttributeComponents::Numerical(std::move(gaussians));
  Matrix right(1, 2);
  right(0, 0) = 0.99;
  right(0, 1) = 0.01;
  Matrix wrong(1, 2);
  wrong(0, 0) = 0.01;
  wrong(0, 1) = 0.99;
  EXPECT_GT(AttributeLogLikelihood(values, comp, right),
            AttributeLogLikelihood(values, comp, wrong));
}

TEST(ObjectiveTest, NodesWithoutObservationsContributeNothing) {
  Attribute text = Attribute::Categorical("text", 2, 5);  // all empty
  auto comp = AttributeComponents::CategoricalUniform(2, 2);
  Matrix theta(5, 2, 0.5);
  EXPECT_DOUBLE_EQ(AttributeLogLikelihood(text, comp, theta), 0.0);
}

TEST(ObjectiveTest, MultiAttributeSumsIndependently) {
  Attribute a = Attribute::Categorical("a", 2, 1);
  (void)a.AddTermCount(0, 0, 1.0);
  Attribute b = Attribute::Numerical("b", 1);
  (void)b.AddValue(0, 1.0);
  auto comp_a = AttributeComponents::CategoricalUniform(2, 2);
  auto comp_b = AttributeComponents::Numerical(
      {GaussianDistribution(1.0, 1.0), GaussianDistribution(2.0, 1.0)});
  Matrix theta(1, 2, 0.5);
  const double separate = AttributeLogLikelihood(a, comp_a, theta) +
                          AttributeLogLikelihood(b, comp_b, theta);
  const double together = TotalAttributeLogLikelihood(
      {&a, &b}, {comp_a, comp_b}, theta);
  EXPECT_NEAR(separate, together, 1e-12);
}

TEST(ObjectiveTest, G1IsStructurePlusAttributes) {
  auto fixture = testing::MakeTwoCommunityNetwork(3, 1.0, 81);
  const Network& net = fixture.dataset.network;
  std::vector<const Attribute*> attrs = {&fixture.dataset.attributes[0]};
  auto comp = AttributeComponents::CategoricalUniform(2, 4);
  std::vector<AttributeComponents> comps = {comp};
  Rng rng(3);
  Matrix theta(net.num_nodes(), 2);
  for (size_t v = 0; v < net.num_nodes(); ++v) {
    theta.SetRow(v, rng.SimplexUniform(2));
  }
  std::vector<double> gamma = {1.0, 2.0, 0.5};
  EXPECT_NEAR(G1Objective(net, attrs, comps, theta, gamma),
              StructuralScore(net, theta, gamma) +
                  TotalAttributeLogLikelihood(attrs, comps, theta),
              1e-9);
}

}  // namespace
}  // namespace genclus
