// Parameterized property sweeps over the full GenClus pipeline: for every
// combination of (cluster count, attribute completeness, network size),
// the invariants of §2.2 must hold — simplex memberships for every object,
// non-negative strengths, deterministic replay — and the planted structure
// must be recovered when the signal is present.
#include <gtest/gtest.h>

#include <cmath>

#include "core/genclus.h"
#include "core/strength.h"
#include "eval/nmi.h"
#include "prob/simplex.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

struct SweepCase {
  size_t docs_per_side;
  double text_fraction;
  size_t num_clusters;
  uint64_t seed;
};

void PrintTo(const SweepCase& c, std::ostream* os) {
  *os << "docs=" << c.docs_per_side << " text=" << c.text_fraction
      << " K=" << c.num_clusters << " seed=" << c.seed;
}

class GenClusSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GenClusSweep, InvariantsHold) {
  const SweepCase c = GetParam();
  auto fixture = MakeTwoCommunityNetwork(c.docs_per_side, c.text_fraction,
                                         c.seed);
  GenClusConfig config;
  config.num_clusters = c.num_clusters;
  config.outer_iterations = 4;
  config.em_iterations = 30;
  config.num_init_seeds = 2;
  config.seed = c.seed * 31 + 1;
  auto result = RunGenClus(fixture.dataset, {"text"}, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Invariant 1: every membership row on the simplex.
  for (size_t v = 0; v < result->theta.rows(); ++v) {
    EXPECT_TRUE(IsOnSimplex(result->theta.RowVector(v), 1e-9))
        << "node " << v;
  }
  // Invariant 2: strengths non-negative and finite.
  for (double g : result->gamma) {
    EXPECT_GE(g, 0.0);
    EXPECT_TRUE(std::isfinite(g));
  }
  // Invariant 3: objective finite.
  EXPECT_TRUE(std::isfinite(result->objective));
  // Invariant 4: trace covers every iteration run.
  EXPECT_GE(result->trace.size(), 2u);

  // Invariant 5: bit-identical replay.
  auto replay = RunGenClus(fixture.dataset, {"text"}, config);
  ASSERT_TRUE(replay.ok());
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(result->theta, replay->theta), 0.0);
}

TEST_P(GenClusSweep, RecoversStructureWithFullText) {
  const SweepCase c = GetParam();
  if (c.text_fraction < 1.0 || c.num_clusters != 2) {
    GTEST_SKIP() << "recovery check only for the identifiable cases";
  }
  auto fixture = MakeTwoCommunityNetwork(c.docs_per_side, 1.0, c.seed);
  GenClusConfig config;
  config.num_clusters = 2;
  config.outer_iterations = 4;
  config.em_iterations = 40;
  config.num_init_seeds = 3;
  config.seed = c.seed * 13 + 5;
  auto result = RunGenClus(fixture.dataset, {"text"}, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(NormalizedMutualInformation(result->HardLabels(),
                                        fixture.dataset.labels.raw()),
            0.85);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GenClusSweep,
    ::testing::Values(SweepCase{4, 1.0, 2, 1}, SweepCase{4, 0.5, 2, 2},
                      SweepCase{4, 0.0, 2, 3}, SweepCase{8, 1.0, 2, 4},
                      SweepCase{8, 0.3, 2, 5}, SweepCase{8, 1.0, 3, 6},
                      SweepCase{6, 0.7, 4, 7}, SweepCase{12, 1.0, 2, 8}));

// Gradient checks across prior widths and membership concentrations: the
// analytic gradient of g2' must match finite differences everywhere.
struct GradientCase {
  double sigma;
  double concentration_eps;
  uint64_t seed;
};

void PrintTo(const GradientCase& c, std::ostream* os) {
  *os << "sigma=" << c.sigma << " eps=" << c.concentration_eps
      << " seed=" << c.seed;
}

class StrengthGradientSweep
    : public ::testing::TestWithParam<GradientCase> {};

TEST_P(StrengthGradientSweep, AnalyticMatchesNumeric) {
  const GradientCase c = GetParam();
  auto fixture = MakeTwoCommunityNetwork(4, 1.0, c.seed);
  std::vector<uint32_t> labels(fixture.dataset.network.num_nodes());
  for (NodeId v = 0; v < labels.size(); ++v) {
    labels[v] = fixture.dataset.labels.Get(v);
  }
  Matrix theta = testing::ConcentratedTheta(labels, 2,
                                            c.concentration_eps);
  GenClusConfig config;
  config.num_clusters = 2;
  config.gamma_prior_sigma = c.sigma;
  StrengthLearner learner(&fixture.dataset.network, &theta, &config);

  Rng rng(c.seed);
  std::vector<double> gamma(3);
  for (double& g : gamma) g = rng.Uniform(0.1, 2.0);
  const auto grad = learner.Gradient(gamma);
  const double h = 1e-6;
  for (size_t r = 0; r < gamma.size(); ++r) {
    std::vector<double> up = gamma;
    std::vector<double> down = gamma;
    up[r] += h;
    down[r] -= h;
    const double numeric =
        (learner.Objective(up) - learner.Objective(down)) / (2.0 * h);
    EXPECT_NEAR(grad[r], numeric, 1e-4 * (1.0 + std::fabs(numeric)))
        << "relation " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrengthGradientSweep,
    ::testing::Values(GradientCase{0.1, 0.1, 1}, GradientCase{0.5, 0.1, 2},
                      GradientCase{2.0, 0.1, 3}, GradientCase{0.5, 0.4, 4},
                      GradientCase{0.5, 0.01, 5},
                      GradientCase{1.0, 0.25, 6}));

}  // namespace
}  // namespace genclus
