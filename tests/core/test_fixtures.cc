#include "tests/core/test_fixtures.h"

#include "common/check.h"

namespace genclus::testing {

GenClusConfig PlantedFixtureConfig(uint64_t seed) {
  GenClusConfig config;
  config.num_clusters = 2;
  config.outer_iterations = 5;
  config.em_iterations = 60;
  config.seed = seed;
  config.num_init_seeds = 3;
  return config;
}

TwoCommunityNetwork MakeTwoCommunityNetwork(size_t docs_per_side,
                                            double text_fraction,
                                            uint64_t seed) {
  GENCLUS_CHECK_GE(docs_per_side, 2u);
  Rng rng(seed);
  TwoCommunityNetwork out;

  Schema schema;
  out.doc_type = schema.AddObjectType("doc").value();
  out.tag_type = schema.AddObjectType("tag").value();
  out.doc_doc = schema.AddLinkType("doc_doc", out.doc_type, out.doc_type)
                    .value();
  out.doc_tag = schema.AddLinkType("doc_tag", out.doc_type, out.tag_type)
                    .value();
  out.tag_doc = schema.AddLinkType("tag_doc", out.tag_type, out.doc_type)
                    .value();
  GENCLUS_CHECK(schema.SetInverse(out.doc_tag, out.tag_doc).ok());

  NetworkBuilder builder(schema);
  const size_t n_docs = docs_per_side * 2;
  for (size_t i = 0; i < n_docs; ++i) {
    out.docs.push_back(builder.AddNode(out.doc_type).value());
  }
  for (size_t c = 0; c < 2; ++c) {
    out.tags.push_back(builder.AddNode(out.tag_type).value());
  }

  // Ring + chord links within each community (sparse but connected).
  for (size_t side = 0; side < 2; ++side) {
    const size_t base = side * docs_per_side;
    for (size_t i = 0; i < docs_per_side; ++i) {
      const NodeId u = out.docs[base + i];
      const NodeId v = out.docs[base + (i + 1) % docs_per_side];
      GENCLUS_CHECK(builder.AddLink(u, v, out.doc_doc, 1.0).ok());
      GENCLUS_CHECK(builder.AddLink(v, u, out.doc_doc, 1.0).ok());
    }
    for (size_t i = 0; i < docs_per_side; ++i) {
      GENCLUS_CHECK(builder
                        .AddLink(out.docs[base + i], out.tags[side],
                                 out.doc_tag, 1.0)
                        .ok());
      GENCLUS_CHECK(builder
                        .AddLink(out.tags[side], out.docs[base + i],
                                 out.tag_doc, 1.0)
                        .ok());
    }
  }

  out.dataset.network = std::move(builder).Build().value();
  const size_t n = out.dataset.network.num_nodes();

  Attribute text = Attribute::Categorical("text", 4, n);
  for (size_t i = 0; i < n_docs; ++i) {
    if (rng.Uniform() >= text_fraction) continue;
    const size_t side = i < docs_per_side ? 0 : 1;
    // 3 term draws per document from the community's two terms.
    for (int d = 0; d < 3; ++d) {
      const uint32_t term =
          static_cast<uint32_t>(2 * side + rng.UniformIndex(2));
      GENCLUS_CHECK(text.AddTermCount(out.docs[i], term, 1.0).ok());
    }
  }
  out.dataset.attributes.push_back(std::move(text));

  out.dataset.labels = Labels(n);
  for (size_t i = 0; i < n_docs; ++i) {
    out.dataset.labels.Set(out.docs[i], i < docs_per_side ? 0 : 1);
  }
  for (size_t c = 0; c < 2; ++c) {
    out.dataset.labels.Set(out.tags[c], static_cast<uint32_t>(c));
  }
  GENCLUS_CHECK(out.dataset.Validate().ok());
  return out;
}

Matrix ConcentratedTheta(const std::vector<uint32_t>& labels,
                         size_t num_clusters, double eps) {
  Matrix theta(labels.size(), num_clusters,
               eps / static_cast<double>(num_clusters - 1));
  for (size_t v = 0; v < labels.size(); ++v) {
    GENCLUS_CHECK_LT(labels[v], num_clusters);
    theta(v, labels[v]) = 1.0 - eps;
  }
  return theta;
}

}  // namespace genclus::testing
