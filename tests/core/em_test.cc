// Cluster-optimization (EM) step: simplex invariants, update-rule
// semantics (Eqs. 10-12), incomplete-attribute handling, and parallel
// equivalence.
#include "core/em.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/init.h"
#include "core/objective.h"
#include "prob/simplex.h"
#include "tests/core/test_fixtures.h"

namespace genclus {
namespace {

using testing::MakeTwoCommunityNetwork;

class EmFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeTwoCommunityNetwork(5, 1.0, 21);
    config_.num_clusters = 2;
    config_.seed = 99;
    attrs_ = {&fixture_.dataset.attributes[0]};
    gamma_.assign(3, 1.0);
  }

  void InitState(Matrix* theta, std::vector<AttributeComponents>* comps,
                 uint64_t seed = 5) {
    Rng rng(seed);
    *theta = RandomTheta(fixture_.dataset.network.num_nodes(),
                         config_.num_clusters, &rng);
    *comps = InitialComponents(attrs_, config_, &rng);
  }

  testing::TwoCommunityNetwork fixture_;
  GenClusConfig config_;
  std::vector<const Attribute*> attrs_;
  std::vector<double> gamma_;
};

TEST_F(EmFixture, ThetaRowsStayOnSimplex) {
  EmOptimizer opt(&fixture_.dataset.network, attrs_, &config_, nullptr);
  Matrix theta;
  std::vector<AttributeComponents> comps;
  InitState(&theta, &comps);
  for (int step = 0; step < 5; ++step) {
    opt.Step(gamma_, &theta, &comps);
    for (size_t v = 0; v < theta.rows(); ++v) {
      EXPECT_TRUE(IsOnSimplex(theta.RowVector(v), 1e-9))
          << "node " << v << " step " << step;
    }
  }
}

TEST_F(EmFixture, BetaRowsAreDistributions) {
  EmOptimizer opt(&fixture_.dataset.network, attrs_, &config_, nullptr);
  Matrix theta;
  std::vector<AttributeComponents> comps;
  InitState(&theta, &comps);
  opt.Step(gamma_, &theta, &comps);
  const Matrix& beta = comps[0].beta();
  for (size_t k = 0; k < beta.rows(); ++k) {
    double total = 0.0;
    for (size_t l = 0; l < beta.cols(); ++l) {
      EXPECT_GT(beta(k, l), 0.0);  // smoothing keeps strictly positive
      total += beta(k, l);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(EmFixture, RunConvergesAndDeltaShrinks) {
  EmOptimizer opt(&fixture_.dataset.network, attrs_, &config_, nullptr);
  Matrix theta;
  std::vector<AttributeComponents> comps;
  InitState(&theta, &comps);
  config_.em_iterations = 200;
  config_.em_tolerance = 1e-8;
  EmStats stats = opt.Run(gamma_, &theta, &comps);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(stats.final_delta, 1e-8);
}

TEST_F(EmFixture, ObjectiveTraceIsTracked) {
  EmOptimizer opt(&fixture_.dataset.network, attrs_, &config_, nullptr);
  Matrix theta;
  std::vector<AttributeComponents> comps;
  InitState(&theta, &comps);
  config_.em_iterations = 10;
  EmStats stats = opt.Run(gamma_, &theta, &comps, /*track_objective=*/true);
  EXPECT_EQ(stats.objective_trace.size(), stats.iterations);
  // The alternating update should not collapse: all values finite.
  for (double g1 : stats.objective_trace) EXPECT_TRUE(std::isfinite(g1));
  // Later iterations should not be dramatically worse than the start.
  EXPECT_GE(stats.objective_trace.back(),
            stats.objective_trace.front() - 1e-6);
}

TEST_F(EmFixture, RecoversPlantedCommunities) {
  EmOptimizer opt(&fixture_.dataset.network, attrs_, &config_, nullptr);
  Matrix theta;
  std::vector<AttributeComponents> comps;
  InitState(&theta, &comps);
  config_.em_iterations = 100;
  opt.Run(gamma_, &theta, &comps);
  // All community-0 docs should agree with each other on their argmax and
  // disagree with community-1 docs.
  const size_t half = 5;
  const uint32_t side0 = static_cast<uint32_t>(
      ArgMax(theta.RowVector(fixture_.docs[0])));
  for (size_t i = 0; i < half; ++i) {
    EXPECT_EQ(ArgMax(theta.RowVector(fixture_.docs[i])), side0);
    EXPECT_NE(ArgMax(theta.RowVector(fixture_.docs[half + i])), side0);
  }
  // Tags have no text: their membership must follow their community's docs.
  EXPECT_EQ(ArgMax(theta.RowVector(fixture_.tags[0])), side0);
  EXPECT_NE(ArgMax(theta.RowVector(fixture_.tags[1])), side0);
}

TEST_F(EmFixture, AttributeFreeNodesFollowNeighbors) {
  // With gamma = 0 for tag_doc and doc_tag, tags receive no information at
  // all; their theta must go uniform. (Eq. 10: link part zero, no
  // attribute part.)
  EmOptimizer opt(&fixture_.dataset.network, attrs_, &config_, nullptr);
  Matrix theta;
  std::vector<AttributeComponents> comps;
  InitState(&theta, &comps);
  std::vector<double> gamma = {1.0, 1.0, 1.0};
  gamma[fixture_.tag_doc] = 0.0;
  opt.Step(gamma, &theta, &comps);
  for (NodeId tag : fixture_.tags) {
    Vector row = theta.RowVector(tag);
    EXPECT_NEAR(row[0], 0.5, 1e-9);
    EXPECT_NEAR(row[1], 0.5, 1e-9);
  }
}

TEST_F(EmFixture, IncompleteTextStillClustersDocs) {
  // Only 40% of docs carry text; links must propagate labels to the rest.
  auto sparse = MakeTwoCommunityNetwork(8, 0.4, 31);
  std::vector<const Attribute*> attrs = {&sparse.dataset.attributes[0]};
  EmOptimizer opt(&sparse.dataset.network, attrs, &config_, nullptr);
  Rng rng(7);
  Matrix theta = RandomTheta(sparse.dataset.network.num_nodes(), 2, &rng);
  auto comps = InitialComponents(attrs, config_, &rng);
  config_.em_iterations = 150;
  opt.Run({1.0, 1.0, 1.0}, &theta, &comps);
  // Count in-community agreement.
  size_t agree = 0;
  const uint32_t side0 = static_cast<uint32_t>(
      ArgMax(theta.RowVector(sparse.docs[0])));
  for (size_t i = 0; i < 8; ++i) {
    if (ArgMax(theta.RowVector(sparse.docs[i])) == side0) ++agree;
    if (ArgMax(theta.RowVector(sparse.docs[8 + i])) != side0) ++agree;
  }
  EXPECT_GE(agree, 14u);  // allow at most 2 mislabeled docs out of 16
}

TEST_F(EmFixture, ParallelStepMatchesSerial) {
  Matrix theta_serial;
  std::vector<AttributeComponents> comps_serial;
  InitState(&theta_serial, &comps_serial, 17);
  Matrix theta_parallel = theta_serial;
  std::vector<AttributeComponents> comps_parallel = comps_serial;

  EmOptimizer serial(&fixture_.dataset.network, attrs_, &config_, nullptr);
  ThreadPool pool(4);
  EmOptimizer parallel(&fixture_.dataset.network, attrs_, &config_, &pool);
  for (int step = 0; step < 3; ++step) {
    serial.Step(gamma_, &theta_serial, &comps_serial);
    parallel.Step(gamma_, &theta_parallel, &comps_parallel);
  }
  EXPECT_LT(Matrix::MaxAbsDiff(theta_serial, theta_parallel), 1e-12);
  EXPECT_LT(Matrix::MaxAbsDiff(comps_serial[0].beta(),
                               comps_parallel[0].beta()),
            1e-12);
}

TEST_F(EmFixture, GaussianAttributeUpdates) {
  // A small numerical-attribute network: values near 0 for community 0 and
  // near 10 for community 1; EM must separate the Gaussians.
  auto net_fixture = MakeTwoCommunityNetwork(4, 0.0, 41);
  const size_t n = net_fixture.dataset.network.num_nodes();
  Attribute values = Attribute::Numerical("x", n);
  Rng rng(11);
  for (size_t i = 0; i < 4; ++i) {
    (void)values.AddValue(net_fixture.docs[i], rng.Gaussian(0.0, 0.3));
    (void)values.AddValue(net_fixture.docs[4 + i], rng.Gaussian(10.0, 0.3));
  }
  std::vector<const Attribute*> attrs = {&values};
  EmOptimizer opt(&net_fixture.dataset.network, attrs, &config_, nullptr);
  Matrix theta = RandomTheta(n, 2, &rng);
  auto comps = InitialComponents(attrs, config_, &rng);
  config_.em_iterations = 100;
  opt.Run({1.0, 1.0, 1.0}, &theta, &comps);
  const double m0 = comps[0].gaussian(0).mean();
  const double m1 = comps[0].gaussian(1).mean();
  EXPECT_GT(std::fabs(m0 - m1), 5.0);  // means separated
  EXPECT_NEAR(std::min(m0, m1), 0.0, 1.0);
  EXPECT_NEAR(std::max(m0, m1), 10.0, 1.0);
}

TEST_F(EmFixture, TwoAttributesCombine) {
  // Eq. 12 case: two numerical attributes, each carried by HALF the nodes
  // (even-indexed docs observe x, odd-indexed observe y), both bimodal by
  // community. No node has both attributes, yet EM must combine them into
  // one consistent clustering through the links.
  auto net_fixture = MakeTwoCommunityNetwork(4, 0.0, 43);
  const size_t n = net_fixture.dataset.network.num_nodes();
  Attribute x = Attribute::Numerical("x", n);
  Attribute y = Attribute::Numerical("y", n);
  Rng rng(13);
  for (size_t i = 0; i < 8; ++i) {
    const bool second_community = i >= 4;
    const NodeId doc = net_fixture.docs[i];
    for (int rep = 0; rep < 3; ++rep) {
      if (i % 2 == 0) {
        (void)x.AddValue(doc, rng.Gaussian(second_community ? 5.0 : 0.0,
                                           0.2));
      } else {
        (void)y.AddValue(doc, rng.Gaussian(second_community ? 20.0 : 10.0,
                                           0.2));
      }
    }
  }
  std::vector<const Attribute*> attrs = {&x, &y};
  EmOptimizer opt(&net_fixture.dataset.network, attrs, &config_, nullptr);
  Matrix theta = RandomTheta(n, 2, &rng);
  auto comps = InitialComponents(attrs, config_, &rng);
  // Seed components consistently across the two attributes (the library
  // entry point does this via the multi-seed/k-means init).
  std::vector<uint32_t> seed_labels(n, 0);
  for (size_t i = 0; i < 8; ++i) {
    seed_labels[net_fixture.docs[i]] = i >= 4 ? 1 : 0;
  }
  theta = testing::ConcentratedTheta(seed_labels, 2, 0.4);
  opt.EstimateComponents(theta, &comps);
  config_.em_iterations = 100;
  opt.Run({1.0, 1.0, 1.0}, &theta, &comps);
  // The two communities separate even though no node has both attributes.
  const uint32_t side0 = static_cast<uint32_t>(
      ArgMax(theta.RowVector(net_fixture.docs[0])));
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ArgMax(theta.RowVector(net_fixture.docs[i])), side0);
    EXPECT_NE(ArgMax(theta.RowVector(net_fixture.docs[4 + i])), side0);
  }
  // Components recover the per-community means of both attributes.
  const double x_gap = std::fabs(comps[0].gaussian(0).mean() -
                                 comps[0].gaussian(1).mean());
  const double y_gap = std::fabs(comps[1].gaussian(0).mean() -
                                 comps[1].gaussian(1).mean());
  EXPECT_GT(x_gap, 2.5);
  EXPECT_GT(y_gap, 5.0);
}

TEST_F(EmFixture, EstimateComponentsFromLabels) {
  EmOptimizer opt(&fixture_.dataset.network, attrs_, &config_, nullptr);
  std::vector<uint32_t> labels(fixture_.dataset.network.num_nodes());
  for (NodeId v = 0; v < labels.size(); ++v) {
    labels[v] = fixture_.dataset.labels.Get(v);
  }
  Matrix theta = testing::ConcentratedTheta(labels, 2, 0.01);
  Rng rng(3);
  auto comps = InitialComponents(attrs_, config_, &rng);
  opt.EstimateComponents(theta, &comps);
  const Matrix& beta = comps[0].beta();
  // Cluster of community 0 concentrates on terms {0,1}; community 1 on
  // {2,3} (up to label permutation).
  const double c0_own = beta(0, 0) + beta(0, 1);
  const double c0_other = beta(0, 2) + beta(0, 3);
  EXPECT_GT(std::fabs(c0_own - c0_other), 0.8);
}

TEST_F(EmFixture, KernelStepMatchesReferenceOnTextFixture) {
  // The typed-CSR/SpMM kernel path must reproduce the original per-link
  // AoS traversal within 1e-12 on every iterate of a multi-step run.
  Matrix theta_kernel;
  std::vector<AttributeComponents> comps_kernel;
  InitState(&theta_kernel, &comps_kernel, 23);
  Matrix theta_ref = theta_kernel;
  std::vector<AttributeComponents> comps_ref = comps_kernel;

  EmOptimizer opt(&fixture_.dataset.network, attrs_, &config_, nullptr);
  EmWorkspace workspace;
  for (int step = 0; step < 5; ++step) {
    const double delta_kernel =
        opt.Step(gamma_, &theta_kernel, &comps_kernel, &workspace);
    const double delta_ref = opt.ReferenceStep(gamma_, &theta_ref, &comps_ref);
    EXPECT_NEAR(delta_kernel, delta_ref, 1e-12) << "step " << step;
    EXPECT_LT(Matrix::MaxAbsDiff(theta_kernel, theta_ref), 1e-12)
        << "step " << step;
    EXPECT_LT(Matrix::MaxAbsDiff(comps_kernel[0].beta(), comps_ref[0].beta()),
              1e-12)
        << "step " << step;
  }
}

TEST_F(EmFixture, KernelStepMatchesReferenceWithNumericalAttributes) {
  // Same cross-check with a numerical attribute carried by half the docs
  // (incomplete), so the Gaussian-constant path and the incomplete-
  // attribute path both run.
  auto net_fixture = MakeTwoCommunityNetwork(6, 0.0, 77);
  const size_t n = net_fixture.dataset.network.num_nodes();
  Attribute values = Attribute::Numerical("x", n);
  Rng value_rng(29);
  for (size_t i = 0; i < 6; i += 2) {
    (void)values.AddValue(net_fixture.docs[i], value_rng.Gaussian(0.0, 0.5));
    (void)values.AddValue(net_fixture.docs[6 + i],
                          value_rng.Gaussian(8.0, 0.5));
  }
  std::vector<const Attribute*> attrs = {&values};
  EmOptimizer opt(&net_fixture.dataset.network, attrs, &config_, nullptr);
  Rng rng(31);
  Matrix theta_kernel = RandomTheta(n, 2, &rng);
  auto comps_kernel = InitialComponents(attrs, config_, &rng);
  Matrix theta_ref = theta_kernel;
  auto comps_ref = comps_kernel;

  EmWorkspace workspace;
  for (int step = 0; step < 5; ++step) {
    opt.Step(gamma_, &theta_kernel, &comps_kernel, &workspace);
    opt.ReferenceStep(gamma_, &theta_ref, &comps_ref);
    EXPECT_LT(Matrix::MaxAbsDiff(theta_kernel, theta_ref), 1e-12)
        << "step " << step;
    for (size_t k = 0; k < 2; ++k) {
      EXPECT_NEAR(comps_kernel[0].gaussian(k).mean(),
                  comps_ref[0].gaussian(k).mean(), 1e-12);
      EXPECT_NEAR(comps_kernel[0].gaussian(k).variance(),
                  comps_ref[0].gaussian(k).variance(), 1e-12);
    }
  }
}

TEST_F(EmFixture, StepIsBitwiseInvariantToThreadCount) {
  // The fixed-grain block partition and block-ordered merge make one Step
  // bit-identical for any pool size, including no pool at all.
  Matrix theta_serial;
  std::vector<AttributeComponents> comps_serial;
  InitState(&theta_serial, &comps_serial, 47);

  EmOptimizer serial(&fixture_.dataset.network, attrs_, &config_, nullptr);
  for (int step = 0; step < 3; ++step) {
    serial.Step(gamma_, &theta_serial, &comps_serial);
  }
  for (size_t threads : {2u, 3u, 8u}) {
    Matrix theta;
    std::vector<AttributeComponents> comps;
    InitState(&theta, &comps, 47);
    ThreadPool pool(threads);
    EmOptimizer parallel(&fixture_.dataset.network, attrs_, &config_, &pool);
    for (int step = 0; step < 3; ++step) {
      parallel.Step(gamma_, &theta, &comps);
    }
    EXPECT_EQ(theta.data(), theta_serial.data()) << threads << " threads";
    EXPECT_EQ(comps[0].beta().data(), comps_serial[0].beta().data())
        << threads << " threads";
  }
}

TEST_F(EmFixture, FusedTraceMatchesG1Objective) {
  // Run(track_objective) computes the trace inside the fused sweep; it
  // must match an explicit G1Objective evaluation at every iterate. The
  // factored structural term reassociates floating-point sums, so compare
  // at 1e-12 relative to the objective's magnitude.
  config_.em_iterations = 8;
  config_.em_tolerance = 0.0;  // fixed iteration count for the replay
  EmOptimizer opt(&fixture_.dataset.network, attrs_, &config_, nullptr);
  Matrix theta;
  std::vector<AttributeComponents> comps;
  InitState(&theta, &comps, 61);
  Matrix theta_replay = theta;
  std::vector<AttributeComponents> comps_replay = comps;

  EmStats stats = opt.Run(gamma_, &theta, &comps, /*track_objective=*/true);
  ASSERT_EQ(stats.objective_trace.size(), stats.iterations);

  EmWorkspace workspace;
  for (size_t iter = 0; iter < stats.iterations; ++iter) {
    opt.Step(gamma_, &theta_replay, &comps_replay, &workspace);
    const double want = G1Objective(fixture_.dataset.network, attrs_,
                                    comps_replay, theta_replay, gamma_);
    const double tol = 1e-12 * (1.0 + std::fabs(want));
    EXPECT_NEAR(stats.objective_trace[iter], want, tol) << "iter " << iter;
  }
  // The replayed final iterate equals Run's (same kernel path throughout).
  EXPECT_EQ(theta.data(), theta_replay.data());
}

TEST(EmMultiBlockTest, KernelPathDeterministicAndCorrectAcrossBlocks) {
  // The small fixtures above fit in a single 128-node reduction block, so
  // they cannot catch a broken block-order merge. 300 docs per side gives
  // 602 nodes = 5 blocks: cross-check the kernel path against the
  // reference AND pin bitwise thread invariance where the multi-block
  // merge actually runs.
  auto fixture = MakeTwoCommunityNetwork(300, 0.5, 57);
  std::vector<const Attribute*> attrs = {&fixture.dataset.attributes[0]};
  GenClusConfig config;
  config.num_clusters = 2;
  const std::vector<double> gamma(3, 1.0);
  Rng rng(58);
  const Matrix theta0 =
      RandomTheta(fixture.dataset.network.num_nodes(), 2, &rng);
  const auto comps0 = InitialComponents(attrs, config, &rng);

  // Reference iterate (original AoS traversal, straight-line accumulate).
  EmOptimizer serial(&fixture.dataset.network, attrs, &config, nullptr);
  Matrix theta_ref = theta0;
  auto comps_ref = comps0;
  for (int step = 0; step < 3; ++step) {
    serial.ReferenceStep(gamma, &theta_ref, &comps_ref);
  }

  // Serial kernel path: blocked merge must match the reference to 1e-12.
  Matrix theta_serial = theta0;
  auto comps_serial = comps0;
  EmWorkspace workspace;
  for (int step = 0; step < 3; ++step) {
    serial.Step(gamma, &theta_serial, &comps_serial, &workspace);
  }
  EXPECT_LT(Matrix::MaxAbsDiff(theta_serial, theta_ref), 1e-12);
  EXPECT_LT(Matrix::MaxAbsDiff(comps_serial[0].beta(), comps_ref[0].beta()),
            1e-12);

  // Pooled kernel path: bitwise equal to the serial kernel path.
  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    EmOptimizer parallel(&fixture.dataset.network, attrs, &config, &pool);
    Matrix theta = theta0;
    auto comps = comps0;
    for (int step = 0; step < 3; ++step) {
      parallel.Step(gamma, &theta, &comps);
    }
    EXPECT_EQ(theta.data(), theta_serial.data()) << threads << " threads";
    EXPECT_EQ(comps[0].beta().data(), comps_serial[0].beta().data())
        << threads << " threads";
  }
}

TEST_F(EmFixture, WorkspaceReuseDoesNotChangeResults) {
  // A workspace carried across steps (and sized for a different problem
  // first) must be arithmetically invisible.
  auto other = MakeTwoCommunityNetwork(3, 1.0, 13);
  std::vector<const Attribute*> other_attrs = {&other.dataset.attributes[0]};
  EmOptimizer other_opt(&other.dataset.network, other_attrs, &config_,
                        nullptr);
  EmWorkspace workspace;
  Matrix other_theta;
  std::vector<AttributeComponents> other_comps;
  {
    Rng rng(5);
    other_theta = RandomTheta(other.dataset.network.num_nodes(), 2, &rng);
    other_comps = InitialComponents(other_attrs, config_, &rng);
  }
  other_opt.Step(gamma_, &other_theta, &other_comps, &workspace);

  Matrix theta_shared, theta_fresh;
  std::vector<AttributeComponents> comps_shared, comps_fresh;
  InitState(&theta_shared, &comps_shared, 83);
  theta_fresh = theta_shared;
  comps_fresh = comps_shared;
  EmOptimizer opt(&fixture_.dataset.network, attrs_, &config_, nullptr);
  for (int step = 0; step < 3; ++step) {
    opt.Step(gamma_, &theta_shared, &comps_shared, &workspace);  // reused
    opt.Step(gamma_, &theta_fresh, &comps_fresh);  // fresh workspace each
  }
  EXPECT_EQ(theta_shared.data(), theta_fresh.data());
  EXPECT_EQ(comps_shared[0].beta().data(), comps_fresh[0].beta().data());
}

// A dataset engineered so block skipping provably engages. Nodes
// [0, 256) — reduction blocks 0 and 1 — are a "settled" region of
// disjoint 4-cliques with no attribute observations and no out-links
// into the rest of the graph; uniform rows are an exact fixed point of
// their update (each row becomes the normalized average of its three
// clique peers), so both blocks go quiet from the first sweep. Nodes
// [256, 640) are two planted text communities that keep moving from a
// random start. The moving nodes link INTO the settled region, which
// must NOT wake it: re-arming follows out-links into a mover, and the
// settled region has none.
Dataset MakeSkipFixture() {
  Schema schema;
  const ObjectTypeId doc = schema.AddObjectType("doc").value();
  const LinkTypeId dd = schema.AddLinkType("dd", doc, doc).value();

  constexpr size_t kSettled = 256;        // blocks 0..1
  constexpr size_t kMovingPerSide = 192;  // blocks 2..4
  constexpr size_t kTotal = kSettled + 2 * kMovingPerSide;

  NetworkBuilder builder(schema);
  for (size_t i = 0; i < kTotal; ++i) {
    (void)builder.AddNode(doc).value();
  }
  for (size_t base = 0; base < kSettled; base += 4) {
    for (size_t i = 0; i < 4; ++i) {
      for (size_t j = 0; j < 4; ++j) {
        if (i != j) {
          GENCLUS_CHECK(builder.AddLink(base + i, base + j, dd, 1.0).ok());
        }
      }
    }
  }
  for (size_t side = 0; side < 2; ++side) {
    const size_t base = kSettled + side * kMovingPerSide;
    for (size_t i = 0; i < kMovingPerSide; ++i) {
      const NodeId u = static_cast<NodeId>(base + i);
      const NodeId v =
          static_cast<NodeId>(base + (i + 1) % kMovingPerSide);
      GENCLUS_CHECK(builder.AddLink(u, v, dd, 1.0).ok());
      GENCLUS_CHECK(builder.AddLink(v, u, dd, 1.0).ok());
      // One-way link into the settled region (the re-arm honeypot).
      GENCLUS_CHECK(
          builder.AddLink(u, static_cast<NodeId>((base + i) % kSettled),
                          dd, 1.0)
              .ok());
    }
  }

  Dataset out;
  out.network = std::move(builder).Build().value();

  Attribute text = Attribute::Categorical("text", 4, kTotal);
  for (size_t side = 0; side < 2; ++side) {
    const size_t base = kSettled + side * kMovingPerSide;
    for (size_t i = 0; i < kMovingPerSide; ++i) {
      const NodeId v = static_cast<NodeId>(base + i);
      GENCLUS_CHECK(
          text.AddTermCount(v, static_cast<uint32_t>(2 * side + i % 2), 3.0)
              .ok());
    }
  }
  out.attributes.push_back(std::move(text));

  out.labels = Labels(kTotal);
  for (size_t v = 0; v < kSettled; ++v) {
    out.labels.Set(static_cast<NodeId>(v), static_cast<uint32_t>(v % 2));
  }
  for (size_t side = 0; side < 2; ++side) {
    const size_t base = kSettled + side * kMovingPerSide;
    for (size_t i = 0; i < kMovingPerSide; ++i) {
      out.labels.Set(static_cast<NodeId>(base + i),
                     static_cast<uint32_t>(side));
    }
  }
  GENCLUS_CHECK(out.Validate().ok());
  return out;
}

TEST(EmBlockSkipTest, SkipsConvergedBlocksAndStaysBitwiseInvariant) {
  // Convergence-aware sweeps: with block_convergence_tol set, blocks
  // whose per-block delta stayed quiet get skipped — and the skip
  // decisions derive only from the deterministic per-block deltas, so
  // the fitted iterate stays bitwise invariant to thread count x shard
  // count. The settled half of MakeSkipFixture goes quiet immediately
  // while the planted half keeps moving, so skipping has something to
  // act on.
  const Dataset dataset = MakeSkipFixture();
  std::vector<const Attribute*> attrs = {&dataset.attributes[0]};
  GenClusConfig config;
  config.num_clusters = 2;
  config.em_iterations = 60;
  config.em_tolerance = 1e-6;
  config.block_convergence_tol = 1e-6;
  config.block_convergence_sweeps = 2;
  const std::vector<double> gamma(1, 1.0);
  Rng rng(62);
  Matrix theta0 = RandomTheta(dataset.network.num_nodes(), 2, &rng);
  for (size_t v = 0; v < 256; ++v) {
    theta0.SetRow(static_cast<NodeId>(v), {0.5, 0.5});
  }
  const auto comps0 = InitialComponents(attrs, config, &rng);

  // Reference: serial, 1 shard.
  EmOptimizer serial(&dataset.network, attrs, &config, nullptr);
  Matrix theta_ref = theta0;
  auto comps_ref = comps0;
  const EmStats ref_stats = serial.Run(gamma, &theta_ref, &comps_ref);
  ASSERT_EQ(ref_stats.blocks, 5u);
  ASSERT_EQ(ref_stats.skipped_per_sweep.size(), ref_stats.iterations);
  ASSERT_EQ(ref_stats.final_block_deltas.size(), ref_stats.blocks);
  size_t ref_skipped = 0;
  for (size_t s : ref_stats.skipped_per_sweep) ref_skipped += s;
  EXPECT_GT(ref_skipped, 0u) << "no block ever skipped — the knob is dead";

  for (size_t threads : {2u, 8u}) {
    for (size_t shards : {1u, 3u}) {
      ThreadPool pool(threads);
      GenClusConfig sharded = config;
      sharded.theta_shards = shards;
      EmOptimizer opt(&dataset.network, attrs, &sharded, &pool);
      Matrix theta = theta0;
      auto comps = comps0;
      const EmStats stats = opt.Run(gamma, &theta, &comps);
      EXPECT_EQ(theta.data(), theta_ref.data())
          << threads << " threads, " << shards << " shards";
      EXPECT_EQ(comps[0].beta().data(), comps_ref[0].beta().data())
          << threads << " threads, " << shards << " shards";
      // Same deltas -> same skip schedule, sweep by sweep.
      EXPECT_EQ(stats.skipped_per_sweep, ref_stats.skipped_per_sweep)
          << threads << " threads, " << shards << " shards";
    }
  }

  // The skipped iterate is a tolerance-bounded approximation of the
  // exact run: close, but not (necessarily) equal.
  GenClusConfig exact = config;
  exact.block_convergence_tol = 0.0;
  EmOptimizer no_skip(&dataset.network, attrs, &exact, nullptr);
  Matrix theta_exact = theta0;
  auto comps_exact = comps0;
  const EmStats exact_stats = no_skip.Run(gamma, &theta_exact, &comps_exact);
  EXPECT_TRUE(exact_stats.skipped_per_sweep.empty());
  EXPECT_LT(Matrix::MaxAbsDiff(theta_ref, theta_exact), 1e-3);
}

TEST(EmBlockSkipTest, ObjectiveTrackedRunsNeverSkip) {
  // Skipping would freeze the cached per-block statistics the fused
  // objective trace reads, so tracked runs disable it outright.
  auto fixture = MakeTwoCommunityNetwork(300, 0.5, 63);
  std::vector<const Attribute*> attrs = {&fixture.dataset.attributes[0]};
  GenClusConfig config;
  config.num_clusters = 2;
  config.em_iterations = 20;
  config.block_convergence_tol = 1e-5;
  const std::vector<double> gamma(3, 1.0);
  Rng rng(64);
  Matrix theta = RandomTheta(fixture.dataset.network.num_nodes(), 2, &rng);
  auto comps = InitialComponents(attrs, config, &rng);
  EmOptimizer opt(&fixture.dataset.network, attrs, &config, nullptr);
  const EmStats stats =
      opt.Run(gamma, &theta, &comps, /*track_objective=*/true);
  EXPECT_TRUE(stats.skipped_per_sweep.empty());
  EXPECT_EQ(stats.objective_trace.size(), stats.iterations);
}

TEST(EstimateComponentsSmoothing, MatchesEmUpdateRuleExactly) {
  // EstimateComponents must apply the SAME smoothing as UpdateComponents:
  // smooth = beta_smoothing * row_total (no stray epsilon), with the
  // empty-cluster uniform fallback. With zero smoothing the estimate is
  // the exact ML ratio — unseen terms get exactly zero, and counts of
  // {term0: 2, term1: 6} in cluster 0 give exactly {0.25, 0.75}.
  Schema schema;
  ObjectTypeId doc = schema.AddObjectType("doc").value();
  (void)schema.AddLinkType("dd", doc, doc).value();
  NetworkBuilder builder(schema);
  NodeId a = builder.AddNode(doc).value();
  NodeId b = builder.AddNode(doc).value();
  Network net = std::move(builder).Build().value();

  Attribute text = Attribute::Categorical("text", 2, net.num_nodes());
  ASSERT_TRUE(text.AddTermCount(a, 0, 2.0).ok());
  ASSERT_TRUE(text.AddTermCount(b, 1, 6.0).ok());

  Matrix theta(net.num_nodes(), 2);
  theta.SetRow(a, {1.0, 0.0});  // both nodes in cluster 0: cluster 1 empty
  theta.SetRow(b, {1.0, 0.0});

  GenClusConfig config;
  config.num_clusters = 2;
  config.beta_smoothing = 0.0;
  EmOptimizer opt(&net, {&text}, &config, nullptr);
  std::vector<AttributeComponents> comps = {
      AttributeComponents::CategoricalUniform(2, 2)};
  opt.EstimateComponents(theta, &comps);
  const Matrix& beta = comps[0].beta();
  EXPECT_EQ(beta(0, 0), 0.25);
  EXPECT_EQ(beta(0, 1), 0.75);
  // Empty cluster keeps a uniform term distribution, as in the EM update.
  EXPECT_EQ(beta(1, 0), 0.5);
  EXPECT_EQ(beta(1, 1), 0.5);

  // With smoothing on, the value is exactly the UpdateComponents formula:
  // (count + s * total) / (total + s * total * vocab), s = beta_smoothing.
  config.beta_smoothing = 1e-6;
  std::vector<AttributeComponents> smoothed = {
      AttributeComponents::CategoricalUniform(2, 2)};
  opt.EstimateComponents(theta, &smoothed);
  const double smooth = config.beta_smoothing * 8.0;
  EXPECT_EQ(smoothed[0].beta()(0, 0), (2.0 + smooth) / (8.0 + 2.0 * smooth));
  EXPECT_EQ(smoothed[0].beta()(0, 1), (6.0 + smooth) / (8.0 + 2.0 * smooth));
}

}  // namespace
}  // namespace genclus
