// GenClusConfig::Validate: every rejection path returns InvalidArgument
// with the offending field named, and the defaults pass.
#include "core/config.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace genclus {
namespace {

constexpr size_t kLinkTypes = 3;

void ExpectRejected(const GenClusConfig& config, const std::string& field) {
  Status s = config.Validate(kLinkTypes);
  EXPECT_FALSE(s.ok()) << "expected rejection for " << field;
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find(field), std::string::npos)
      << "message '" << s.message() << "' does not name " << field;
}

TEST(ConfigValidateTest, DefaultsAreValid) {
  EXPECT_TRUE(GenClusConfig().Validate(kLinkTypes).ok());
  EXPECT_TRUE(GenClusConfig().Validate(0).ok());
}

TEST(ConfigValidateTest, RejectsTooFewClusters) {
  GenClusConfig config;
  config.num_clusters = 1;
  ExpectRejected(config, "num_clusters");
  config.num_clusters = 0;
  ExpectRejected(config, "num_clusters");
}

TEST(ConfigValidateTest, RejectsZeroIterationBudgets) {
  GenClusConfig config;
  config.outer_iterations = 0;
  ExpectRejected(config, "outer_iterations");

  config = GenClusConfig();
  config.em_iterations = 0;
  ExpectRejected(config, "em_iterations");

  config = GenClusConfig();
  config.newton_iterations = 0;
  ExpectRejected(config, "newton_iterations");

  config = GenClusConfig();
  config.num_init_seeds = 0;
  ExpectRejected(config, "num_init_seeds");
}

TEST(ConfigValidateTest, RejectsBadTolerances) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  GenClusConfig config;
  config.outer_tolerance = -1.0;
  ExpectRejected(config, "outer_tolerance");

  config = GenClusConfig();
  config.outer_tolerance = kNan;
  ExpectRejected(config, "outer_tolerance");

  config = GenClusConfig();
  config.em_tolerance = -1e-9;
  ExpectRejected(config, "em_tolerance");

  config = GenClusConfig();
  config.newton_tolerance =
      std::numeric_limits<double>::infinity();
  ExpectRejected(config, "newton_tolerance");

  // Zero tolerances are deliberate ("never early-stop") and must pass.
  config = GenClusConfig();
  config.outer_tolerance = 0.0;
  config.em_tolerance = 0.0;
  config.newton_tolerance = 0.0;
  EXPECT_TRUE(config.Validate(kLinkTypes).ok());
}

TEST(ConfigValidateTest, RejectsBadPriorAndFloors) {
  GenClusConfig config;
  config.gamma_prior_sigma = 0.0;
  ExpectRejected(config, "gamma_prior_sigma");

  config = GenClusConfig();
  config.theta_floor = 0.0;
  ExpectRejected(config, "theta_floor");

  // A floor at or above 1/K makes the simplex clamp infeasible.
  config = GenClusConfig();
  config.theta_floor = 0.5;  // K = 4 by default
  ExpectRejected(config, "theta_floor");

  config = GenClusConfig();
  config.beta_smoothing = -1.0;
  ExpectRejected(config, "beta_smoothing");

  config = GenClusConfig();
  config.variance_floor = 0.0;
  ExpectRejected(config, "variance_floor");
}

TEST(ConfigValidateTest, RejectsInitialGammaMismatchedWithSchema) {
  GenClusConfig config;
  config.initial_gamma = {1.0, 1.0};  // schema declares 3 link types
  ExpectRejected(config, "initial_gamma");

  config.initial_gamma = {1.0, 1.0, 1.0};
  EXPECT_TRUE(config.Validate(kLinkTypes).ok());
}

TEST(ConfigValidateTest, RejectsNonFiniteOrNegativeInitialGamma) {
  GenClusConfig config;
  config.initial_gamma = {1.0, -0.5, 1.0};
  ExpectRejected(config, "initial_gamma");

  config.initial_gamma = {1.0, std::numeric_limits<double>::quiet_NaN(),
                          1.0};
  ExpectRejected(config, "initial_gamma");
}

}  // namespace
}  // namespace genclus
