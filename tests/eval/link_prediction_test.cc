#include "eval/link_prediction.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genclus {
namespace {

// Two authors, three conferences; each author links to "their" conferences.
struct LinkPredFixture {
  Network net;
  LinkTypeId ac;
  NodeId a0, a1, c0, c1, c2;

  LinkPredFixture() {
    Schema schema;
    auto a = schema.AddObjectType("A").value();
    auto c = schema.AddObjectType("C").value();
    ac = schema.AddLinkType("ac", a, c).value();
    NetworkBuilder builder(std::move(schema));
    a0 = builder.AddNode(a).value();
    a1 = builder.AddNode(a).value();
    c0 = builder.AddNode(c).value();
    c1 = builder.AddNode(c).value();
    c2 = builder.AddNode(c).value();
    // a0 publishes in c0 and c1; a1 publishes in c2.
    EXPECT_TRUE(builder.AddLink(a0, c0, ac, 2.0).ok());
    EXPECT_TRUE(builder.AddLink(a0, c1, ac, 1.0).ok());
    EXPECT_TRUE(builder.AddLink(a1, c2, ac, 1.0).ok());
    net = std::move(builder).Build().value();
  }
};

Matrix PerfectTheta(const LinkPredFixture& f) {
  // Cluster 0 = {a0, c0, c1}; cluster 1 = {a1, c2}.
  Matrix theta(f.net.num_nodes(), 2, 0.05);
  theta(f.a0, 0) = 0.95;
  theta(f.a1, 1) = 0.95;
  theta(f.c0, 0) = 0.95;
  theta(f.c1, 0) = 0.95;
  theta(f.c2, 1) = 0.95;
  for (size_t v = 0; v < theta.rows(); ++v) {
    double total = theta(v, 0) + theta(v, 1);
    theta(v, 0) /= total;
    theta(v, 1) /= total;
  }
  return theta;
}

TEST(AveragePrecisionTest, PerfectRanking) {
  // Relevant items at ranks 1 and 2 of 4.
  std::vector<size_t> ranked = {0, 1, 2, 3};
  std::vector<bool> relevant = {true, true, false, false};
  EXPECT_DOUBLE_EQ(AveragePrecision(ranked, relevant), 1.0);
}

TEST(AveragePrecisionTest, WorstRanking) {
  std::vector<size_t> ranked = {0, 1, 2, 3};
  std::vector<bool> relevant = {false, false, false, true};
  EXPECT_DOUBLE_EQ(AveragePrecision(ranked, relevant), 0.25);
}

TEST(AveragePrecisionTest, MixedRanking) {
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2 = 5/6.
  std::vector<size_t> ranked = {0, 1, 2};
  std::vector<bool> relevant = {true, false, true};
  EXPECT_NEAR(AveragePrecision(ranked, relevant), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecisionTest, NoRelevantIsZero) {
  std::vector<size_t> ranked = {0, 1};
  std::vector<bool> relevant = {false, false};
  EXPECT_DOUBLE_EQ(AveragePrecision(ranked, relevant), 0.0);
}

class SimilarityTest
    : public ::testing::TestWithParam<SimilarityKind> {};

TEST_P(SimilarityTest, SelfSimilarityIsMaximal) {
  std::vector<double> concentrated = {0.9, 0.05, 0.05};
  std::vector<double> other = {0.05, 0.9, 0.05};
  const double self_sim =
      MembershipSimilarity(GetParam(), concentrated, concentrated);
  const double cross_sim =
      MembershipSimilarity(GetParam(), concentrated, other);
  EXPECT_GT(self_sim, cross_sim);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SimilarityTest,
    ::testing::Values(SimilarityKind::kCosine,
                      SimilarityKind::kNegativeEuclidean,
                      SimilarityKind::kNegativeCrossEntropy));

TEST(SimilarityTest, CrossEntropyIsAsymmetric) {
  std::vector<double> expert = {0.9, 0.1};
  std::vector<double> neutral = {0.5, 0.5};
  EXPECT_NE(MembershipSimilarity(SimilarityKind::kNegativeCrossEntropy,
                                 expert, neutral),
            MembershipSimilarity(SimilarityKind::kNegativeCrossEntropy,
                                 neutral, expert));
}

TEST(SimilarityTest, NamesAreDistinct) {
  EXPECT_STRNE(SimilarityKindName(SimilarityKind::kCosine),
               SimilarityKindName(SimilarityKind::kNegativeEuclidean));
  EXPECT_STRNE(SimilarityKindName(SimilarityKind::kNegativeEuclidean),
               SimilarityKindName(SimilarityKind::kNegativeCrossEntropy));
}

TEST(LinkPredictionTest, PerfectMembershipGivesPerfectMap) {
  LinkPredFixture f;
  Matrix theta = PerfectTheta(f);
  for (SimilarityKind kind :
       {SimilarityKind::kCosine, SimilarityKind::kNegativeEuclidean,
        SimilarityKind::kNegativeCrossEntropy}) {
    auto r = EvaluateLinkPrediction(f.net, theta, f.ac, kind);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->num_queries, 2u);
    EXPECT_NEAR(r->map, 1.0, 1e-9) << SimilarityKindName(kind);
  }
}

TEST(LinkPredictionTest, InvertedMembershipScoresWorse) {
  LinkPredFixture f;
  Matrix good = PerfectTheta(f);
  // Swap the two authors' membership: rankings invert.
  Matrix bad = good;
  for (size_t k = 0; k < 2; ++k) {
    std::swap(bad(f.a0, k), bad(f.a1, k));
  }
  auto good_map = EvaluateLinkPrediction(f.net, good, f.ac,
                                         SimilarityKind::kCosine);
  auto bad_map = EvaluateLinkPrediction(f.net, bad, f.ac,
                                        SimilarityKind::kCosine);
  ASSERT_TRUE(good_map.ok() && bad_map.ok());
  EXPECT_GT(good_map->map, bad_map->map);
}

TEST(LinkPredictionTest, RejectsUnknownRelation) {
  LinkPredFixture f;
  Matrix theta = PerfectTheta(f);
  EXPECT_FALSE(
      EvaluateLinkPrediction(f.net, theta, 9, SimilarityKind::kCosine).ok());
}

TEST(LinkPredictionTest, RejectsMismatchedTheta) {
  LinkPredFixture f;
  Matrix theta(2, 2, 0.5);  // wrong row count
  EXPECT_FALSE(
      EvaluateLinkPrediction(f.net, theta, f.ac, SimilarityKind::kCosine)
          .ok());
}

TEST(LinkPredictionTest, QueriesWithoutLinksAreSkipped) {
  // Add an extra author with no links: num_queries stays 2.
  Schema schema;
  auto a = schema.AddObjectType("A").value();
  auto c = schema.AddObjectType("C").value();
  auto ac = schema.AddLinkType("ac", a, c).value();
  NetworkBuilder builder(std::move(schema));
  NodeId a0 = builder.AddNode(a).value();
  NodeId a1 = builder.AddNode(a).value();
  (void)builder.AddNode(a).value();  // linkless author
  NodeId c0 = builder.AddNode(c).value();
  EXPECT_TRUE(builder.AddLink(a0, c0, ac, 1.0).ok());
  EXPECT_TRUE(builder.AddLink(a1, c0, ac, 1.0).ok());
  Network net = std::move(builder).Build().value();
  Matrix theta(net.num_nodes(), 2, 0.5);
  auto r = EvaluateLinkPrediction(net, theta, ac, SimilarityKind::kCosine);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_queries, 2u);
}

}  // namespace
}  // namespace genclus
