#include "eval/nmi.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hin/types.h"

namespace genclus {
namespace {

TEST(NmiTest, IdenticalPartitionsScoreOne) {
  std::vector<uint32_t> a = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(NormalizedMutualInformation(a, a), 1.0, 1e-12);
}

TEST(NmiTest, RelabeledPartitionScoresOne) {
  std::vector<uint32_t> a = {0, 0, 1, 1, 2, 2};
  std::vector<uint32_t> b = {5, 5, 9, 9, 7, 7};  // same partition, new names
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsScoreZero) {
  // b splits each a-cluster evenly: zero mutual information.
  std::vector<uint32_t> a = {0, 0, 1, 1};
  std::vector<uint32_t> b = {0, 1, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 0.0, 1e-12);
}

TEST(NmiTest, PartialAgreementBetweenZeroAndOne) {
  std::vector<uint32_t> a = {0, 0, 0, 1, 1, 1};
  std::vector<uint32_t> b = {0, 0, 1, 1, 1, 1};  // one object moved
  const double nmi = NormalizedMutualInformation(a, b);
  EXPECT_GT(nmi, 0.0);
  EXPECT_LT(nmi, 1.0);
}

TEST(NmiTest, SymmetricInArguments) {
  std::vector<uint32_t> a = {0, 0, 1, 1, 2, 0};
  std::vector<uint32_t> b = {1, 1, 0, 2, 2, 2};
  EXPECT_NEAR(NormalizedMutualInformation(a, b),
              NormalizedMutualInformation(b, a), 1e-12);
}

TEST(NmiTest, UnlabeledPositionsIgnored) {
  std::vector<uint32_t> a = {0, 0, 1, 1, kUnlabeled, 0};
  std::vector<uint32_t> b = {2, 2, 3, 3, 1, kUnlabeled};
  // Over the 4 jointly labeled positions the partitions are identical.
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 1.0, 1e-12);
}

TEST(NmiTest, NoOverlapScoresZero) {
  std::vector<uint32_t> a = {0, kUnlabeled};
  std::vector<uint32_t> b = {kUnlabeled, 0};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(a, b), 0.0);
}

TEST(NmiTest, SingleClusterBothSidesIsOne) {
  std::vector<uint32_t> a = {0, 0, 0};
  std::vector<uint32_t> b = {4, 4, 4};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(a, b), 1.0);
}

TEST(NmiTest, SingleClusterOneSideIsZero) {
  std::vector<uint32_t> a = {0, 0, 0, 0};
  std::vector<uint32_t> b = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(a, b), 0.0);
}

TEST(MutualInformationTest, MatchesEntropyForIdenticalPartitions) {
  std::vector<uint32_t> a = {0, 0, 1, 1, 1, 2};
  EXPECT_NEAR(MutualInformation(a, a), LabelEntropy(a), 1e-12);
}

TEST(LabelEntropyTest, UniformAndSkewed) {
  std::vector<uint32_t> uniform = {0, 1, 2, 3};
  EXPECT_NEAR(LabelEntropy(uniform), std::log(4.0), 1e-12);
  std::vector<uint32_t> single = {1, 1, 1};
  EXPECT_DOUBLE_EQ(LabelEntropy(single), 0.0);
  std::vector<uint32_t> with_unlabeled = {0, 1, kUnlabeled};
  EXPECT_NEAR(LabelEntropy(with_unlabeled), std::log(2.0), 1e-12);
}

TEST(PurityTest, PerfectAndImperfect) {
  std::vector<uint32_t> truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Purity(truth, truth), 1.0);
  std::vector<uint32_t> pred = {0, 0, 0, 1};
  // Cluster 0 holds {0,0,1}: majority 2; cluster 1 holds {1}: majority 1.
  EXPECT_DOUBLE_EQ(Purity(pred, truth), 0.75);
}

TEST(MatchedAccuracyTest, PermutedLabelsScorePerfect) {
  std::vector<uint32_t> truth = {0, 0, 1, 1, 2, 2};
  std::vector<uint32_t> pred = {2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(MatchedAccuracy(pred, truth), 1.0);
}

TEST(MatchedAccuracyTest, CountsBestMatching) {
  std::vector<uint32_t> truth = {0, 0, 0, 1, 1, 1};
  std::vector<uint32_t> pred = {0, 0, 1, 1, 1, 1};
  // Best matching: pred 0 -> truth 0 (2 right), pred 1 -> truth 1 (3
  // right): 5/6.
  EXPECT_NEAR(MatchedAccuracy(pred, truth), 5.0 / 6.0, 1e-12);
}

TEST(MatchedAccuracyTest, MoreClustersThanClasses) {
  std::vector<uint32_t> truth = {0, 0, 1, 1};
  std::vector<uint32_t> pred = {0, 1, 2, 2};
  // pred 2 -> truth 1 (2), then one of pred 0/1 -> truth 0 (1): 3/4.
  EXPECT_NEAR(MatchedAccuracy(pred, truth), 0.75, 1e-12);
}

}  // namespace
}  // namespace genclus
