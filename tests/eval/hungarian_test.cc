#include "eval/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace genclus {
namespace {

// Brute-force optimal assignment for cross-checking (n <= 8).
double BruteForceMax(const Matrix& value) {
  const size_t n = value.rows();
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  double best = -1e300;
  do {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += value(i, perm[i]);
    best = std::max(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HungarianTest, IdentityIsOptimalForDiagonalMatrix) {
  Matrix v = {{5.0, 0.0, 0.0}, {0.0, 5.0, 0.0}, {0.0, 0.0, 5.0}};
  auto r = SolveMaxAssignment(v);
  EXPECT_DOUBLE_EQ(r.total_value, 15.0);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(r.assignment[i], i);
}

TEST(HungarianTest, AntiDiagonalForcesPermutation) {
  Matrix v = {{0.0, 1.0}, {1.0, 0.0}};
  auto r = SolveMaxAssignment(v);
  EXPECT_DOUBLE_EQ(r.total_value, 2.0);
  EXPECT_EQ(r.assignment[0], 1u);
  EXPECT_EQ(r.assignment[1], 0u);
}

TEST(HungarianTest, KnownThreeByThree) {
  // Classic example: optimal = 5 + 8 + 4 = ... verify against brute force.
  Matrix v = {{5.0, 3.0, 1.0}, {2.0, 8.0, 4.0}, {7.0, 6.0, 4.0}};
  auto r = SolveMaxAssignment(v);
  EXPECT_DOUBLE_EQ(r.total_value, BruteForceMax(v));
}

TEST(HungarianTest, AssignmentIsAPermutation) {
  Rng rng(7);
  Matrix v(6, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) v(i, j) = rng.Uniform(0.0, 10.0);
  }
  auto r = SolveMaxAssignment(v);
  std::vector<bool> used(6, false);
  for (size_t col : r.assignment) {
    ASSERT_LT(col, 6u);
    EXPECT_FALSE(used[col]);
    used[col] = true;
  }
}

TEST(HungarianTest, MatchesBruteForceOnRandomMatrices) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 2 + rng.UniformIndex(5);  // 2..6
    Matrix v(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) v(i, j) = rng.Uniform(-5.0, 5.0);
    }
    auto r = SolveMaxAssignment(v);
    EXPECT_NEAR(r.total_value, BruteForceMax(v), 1e-9) << "trial " << trial;
  }
}

TEST(HungarianTest, MinAssignment) {
  Matrix cost = {{4.0, 1.0, 3.0}, {2.0, 0.0, 5.0}, {3.0, 2.0, 2.0}};
  auto r = SolveMinAssignment(cost);
  // Optimal min cost is 1 + 2 + 2 = 5 (cols 1, 0, 2).
  EXPECT_DOUBLE_EQ(r.total_value, 5.0);
}

TEST(HungarianTest, EmptyMatrix) {
  Matrix v(0, 0);
  auto r = SolveMaxAssignment(v);
  EXPECT_TRUE(r.assignment.empty());
  EXPECT_DOUBLE_EQ(r.total_value, 0.0);
}

TEST(HungarianTest, SingleElement) {
  Matrix v = {{3.5}};
  auto r = SolveMaxAssignment(v);
  ASSERT_EQ(r.assignment.size(), 1u);
  EXPECT_EQ(r.assignment[0], 0u);
  EXPECT_DOUBLE_EQ(r.total_value, 3.5);
}

}  // namespace
}  // namespace genclus
