#include "linalg/solve.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace genclus {
namespace {

TEST(LuTest, SolvesKnownSystem) {
  Matrix a = {{2.0, 1.0}, {1.0, 3.0}};
  auto r = SolveLinearSystem(a, {3.0, 5.0});
  ASSERT_TRUE(r.ok());
  // Solution of 2x + y = 3, x + 3y = 5 is x = 4/5, y = 7/5.
  EXPECT_NEAR((*r)[0], 0.8, 1e-12);
  EXPECT_NEAR((*r)[1], 1.4, 1e-12);
}

TEST(LuTest, RequiresSquare) {
  Matrix a(2, 3);
  auto r = LuFactorization::Compute(a);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(LuTest, DetectsSingularMatrix) {
  Matrix a = {{1.0, 2.0}, {2.0, 4.0}};
  auto r = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNumericalError);
}

TEST(LuTest, PivotingHandlesZeroLeadingEntry) {
  Matrix a = {{0.0, 1.0}, {1.0, 0.0}};
  auto r = SolveLinearSystem(a, {2.0, 3.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR((*r)[0], 3.0, 1e-12);
  EXPECT_NEAR((*r)[1], 2.0, 1e-12);
}

TEST(LuTest, Determinant) {
  Matrix a = {{2.0, 0.0}, {0.0, 3.0}};
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), 6.0, 1e-12);

  // Permuted rows flip the sign path but not the determinant value.
  Matrix b = {{0.0, 1.0}, {1.0, 0.0}};
  auto lub = LuFactorization::Compute(b);
  ASSERT_TRUE(lub.ok());
  EXPECT_NEAR(lub->Determinant(), -1.0, 1e-12);
}

TEST(LuTest, RandomRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.UniformIndex(8);
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a(i, j) = rng.Gaussian();
      a(i, i) += static_cast<double>(n);  // diagonal dominance
    }
    Vector x_true(n);
    for (size_t i = 0; i < n; ++i) x_true[i] = rng.Gaussian();
    Vector b = a.MultiplyVector(x_true);
    auto x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.ok());
    EXPECT_LT(MaxAbsDiff(*x, x_true), 1e-9);
  }
}

TEST(LuTest, RhsSizeMismatch) {
  Matrix a = Matrix::Identity(3);
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto r = lu->Solve({1.0, 2.0});
  EXPECT_FALSE(r.ok());
}

TEST(CholeskyTest, SolvesSpdSystem) {
  Matrix a = {{4.0, 2.0}, {2.0, 3.0}};
  auto chol = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(chol.ok());
  auto x = chol->Solve({2.0, 1.0});
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  Vector back = a.MultiplyVector(*x);
  EXPECT_NEAR(back[0], 2.0, 1e-12);
  EXPECT_NEAR(back[1], 1.0, 1e-12);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a = {{1.0, 2.0}, {2.0, 1.0}};  // indefinite
  auto chol = CholeskyFactorization::Compute(a);
  EXPECT_FALSE(chol.ok());
  EXPECT_EQ(chol.status().code(), StatusCode::kNumericalError);
}

TEST(CholeskyTest, LogDeterminant) {
  Matrix a = {{4.0, 0.0}, {0.0, 9.0}};
  auto chol = CholeskyFactorization::Compute(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDeterminant(), std::log(36.0), 1e-12);
}

TEST(InverseTest, ProducesInverse) {
  Matrix a = {{2.0, 1.0}, {1.0, 3.0}};
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  Matrix prod = a.Multiply(*inv);
  EXPECT_LT(Matrix::MaxAbsDiff(prod, Matrix::Identity(2)), 1e-12);
}

TEST(InverseTest, FailsOnSingular) {
  Matrix a = {{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(Inverse(a).ok());
}

}  // namespace
}  // namespace genclus
