// Column sharding of the SpMM link term (linalg/sharding.h):
// ShardPartition tiling/clamping, CsrColumnSplit cut correctness, and the
// load-bearing bitwise contract — merging SpmmAccumulateShard over all
// shards in ascending order equals one monolithic SpmmAccumulate call
// exactly, for every K specialization and shard count, including
// accumulation onto non-zero outputs and empty rows/shards.
#include "linalg/sharding.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "linalg/matrix.h"
#include "linalg/spmm.h"

namespace genclus {
namespace {

// A small owning CSR builder for tests (columns ascend within each row,
// the precondition CsrColumnSplit documents).
struct TestCsr {
  std::vector<size_t> offsets;
  std::vector<uint32_t> cols;
  std::vector<double> values;

  CsrMatrixView View() const { return {offsets, cols, values}; }
};

TestCsr RandomCsr(size_t rows, size_t cols, double density, Rng* rng) {
  TestCsr csr;
  csr.offsets.push_back(0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng->Uniform() < density) {
        csr.cols.push_back(static_cast<uint32_t>(c));
        csr.values.push_back(rng->Uniform() * 2.0 - 0.5);
      }
    }
    csr.offsets.push_back(csr.cols.size());
  }
  return csr;
}

Matrix RandomDense(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng->Uniform() - 0.5;
  }
  return m;
}

TEST(ShardPartitionTest, TilesTheColumnRangeForAnyShardCount) {
  for (size_t cols : {0u, 1u, 5u, 16u, 97u}) {
    for (size_t shards : {1u, 2u, 3u, 7u, 16u}) {
      const ShardPartition partition(cols, shards);
      EXPECT_EQ(partition.begin(0), 0u);
      EXPECT_EQ(partition.begin(partition.num_shards()), cols);
      for (size_t s = 0; s < partition.num_shards(); ++s) {
        EXPECT_LE(partition.begin(s), partition.end(s));
        EXPECT_EQ(partition.end(s), partition.begin(s + 1));
      }
    }
  }
}

TEST(ShardPartitionTest, ResolveClampsAndAutoPicks) {
  // Explicit counts clamp to [1, max(1, cols)].
  EXPECT_EQ(ShardPartition::Resolve(4, 100).num_shards(), 4u);
  EXPECT_EQ(ShardPartition::Resolve(200, 100).num_shards(), 100u);
  EXPECT_EQ(ShardPartition::Resolve(5, 0).num_shards(), 1u);
  // Auto (0): small models stay monolithic, huge ones shard, capped at 8.
  EXPECT_EQ(ShardPartition::Resolve(0, 1000).num_shards(), 1u);
  EXPECT_GT(ShardPartition::Resolve(0, size_t{1} << 20).num_shards(), 1u);
  EXPECT_LE(ShardPartition::Resolve(0, size_t{1} << 30).num_shards(), 8u);
}

TEST(CsrColumnSplitTest, CutsMatchAScalarScan) {
  Rng rng(7);
  const TestCsr csr = RandomCsr(13, 29, 0.4, &rng);
  for (size_t shards : {1u, 2u, 3u, 7u}) {
    const ShardPartition partition(29, shards);
    CsrColumnSplit split;
    split.Build(csr.View(), partition);
    ASSERT_FALSE(split.empty());
    EXPECT_EQ(split.num_shards(), shards);
    for (size_t v = 0; v < 13; ++v) {
      for (size_t s = 0; s < shards; ++s) {
        const size_t* extents = split.ShardExtents(s) + v * split.stride();
        // Every non-zero inside the cut range belongs to shard s's
        // columns; everything outside does not.
        for (size_t j = csr.offsets[v]; j < csr.offsets[v + 1]; ++j) {
          const bool in_shard = csr.cols[j] >= partition.begin(s) &&
                                csr.cols[j] < partition.end(s);
          const bool in_range = j >= extents[0] && j < extents[1];
          EXPECT_EQ(in_shard, in_range)
              << "row " << v << " shard " << s << " nz " << j;
        }
      }
    }
  }
}

TEST(ShardedSpmmTest, MergedShardsBitwiseEqualMonolithicCall) {
  Rng rng(11);
  // K sweeps the specialized kernels (2, 3, 4, 8) and the generic path
  // (5); shard counts cover even, odd and more-shards-than-needed cuts.
  for (size_t k : {2u, 3u, 4u, 5u, 8u}) {
    const size_t cols = 41;
    const TestCsr csr = RandomCsr(17, cols, 0.35, &rng);
    const Matrix dense = RandomDense(cols, k, &rng);
    // Non-zero initial out: the chain must resume from it identically.
    const Matrix init = RandomDense(17, k, &rng);
    Matrix want = init;
    SpmmAccumulate(csr.View(), 1.75, dense.data().data(), k, 0, 17,
                   want.data().data());
    for (size_t shards : {1u, 2u, 3u, 7u}) {
      const ShardPartition partition(cols, shards);
      CsrColumnSplit split;
      split.Build(csr.View(), partition);
      Matrix got = init;
      for (size_t s = 0; s < shards; ++s) {
        SpmmAccumulateShard(
            csr.View(), split, partition, s, 1.75,
            dense.data().data() + partition.begin(s) * k, k, 0, 17,
            got.data().data());
      }
      // Bitwise: EXPECT_EQ on the double vectors, no tolerance.
      EXPECT_EQ(got.data(), want.data()) << "k " << k << " shards " << shards;
    }
  }
}

TEST(ShardedSpmmTest, HandlesEmptyRowsAndEmptyShards) {
  // 3 columns split 7 ways: most shards own no columns; row 1 is empty.
  TestCsr csr;
  csr.offsets = {0, 2, 2, 3};
  csr.cols = {0, 2, 1};
  csr.values = {1.5, -2.0, 0.5};
  const size_t k = 2;
  Rng rng(3);
  const Matrix dense = RandomDense(3, k, &rng);
  Matrix want(3, k);
  SpmmAccumulate(csr.View(), 1.0, dense.data().data(), k, 0, 3,
                 want.data().data());
  const ShardPartition partition(3, 7);
  CsrColumnSplit split;
  split.Build(csr.View(), partition);
  Matrix got(3, k);
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    SpmmAccumulateShard(csr.View(), split, partition, s, 1.0,
                        dense.data().data() + partition.begin(s) * k, k, 0,
                        3, got.data().data());
  }
  EXPECT_EQ(got.data(), want.data());
}

TEST(ShardedSpmmTest, RespectsRowRanges) {
  // Sharded accumulation over a sub-range must leave other rows alone,
  // mirroring SpmmAccumulate's row-blocking contract.
  Rng rng(19);
  const TestCsr csr = RandomCsr(10, 20, 0.5, &rng);
  const size_t k = 4;
  const Matrix dense = RandomDense(20, k, &rng);
  Matrix want(10, k);
  SpmmAccumulate(csr.View(), 1.0, dense.data().data(), k, 3, 8,
                 want.data().data());
  const ShardPartition partition(20, 3);
  CsrColumnSplit split;
  split.Build(csr.View(), partition);
  Matrix got(10, k);
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    SpmmAccumulateShard(csr.View(), split, partition, s, 1.0,
                        dense.data().data() + partition.begin(s) * k, k, 3,
                        8, got.data().data());
  }
  EXPECT_EQ(got.data(), want.data());
  for (size_t r : {0u, 1u, 2u, 8u, 9u}) {
    for (size_t c = 0; c < k; ++c) EXPECT_EQ(got(r, c), 0.0);
  }
}

}  // namespace
}  // namespace genclus
