// Parameterized property sweeps for the dense solvers: LU round-trips and
// Cholesky/LU agreement across matrix sizes and conditioning regimes.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/solve.h"

namespace genclus {
namespace {

struct SolveCase {
  size_t dim;
  double diagonal_boost;  // added to the diagonal (conditioning knob)
  uint64_t seed;
};

void PrintTo(const SolveCase& c, std::ostream* os) {
  *os << "dim=" << c.dim << " boost=" << c.diagonal_boost
      << " seed=" << c.seed;
}

class SolveSweep : public ::testing::TestWithParam<SolveCase> {
 protected:
  Matrix RandomMatrix() {
    const SolveCase c = GetParam();
    Rng rng(c.seed);
    Matrix a(c.dim, c.dim);
    for (size_t i = 0; i < c.dim; ++i) {
      for (size_t j = 0; j < c.dim; ++j) a(i, j) = rng.Gaussian();
      a(i, i) += c.diagonal_boost;
    }
    return a;
  }

  Matrix RandomSpd() {
    // A^T A + boost * I is SPD.
    Matrix a = RandomMatrix();
    Matrix spd = a.Transpose().Multiply(a);
    for (size_t i = 0; i < spd.rows(); ++i) {
      spd(i, i) += GetParam().diagonal_boost;
    }
    return spd;
  }
};

TEST_P(SolveSweep, LuRoundTrip) {
  Matrix a = RandomMatrix();
  Rng rng(GetParam().seed ^ 0xF00D);
  Vector x_true(a.rows());
  for (double& x : x_true) x = rng.Gaussian();
  Vector b = a.MultiplyVector(x_true);
  auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  // Residual check is conditioning-independent.
  Vector back = a.MultiplyVector(*x);
  EXPECT_LT(MaxAbsDiff(back, b), 1e-7 * (1.0 + Norm2(b)));
}

TEST_P(SolveSweep, CholeskyMatchesLuOnSpd) {
  Matrix spd = RandomSpd();
  Rng rng(GetParam().seed ^ 0xBEEF);
  Vector b(spd.rows());
  for (double& v : b) v = rng.Gaussian();
  auto chol = CholeskyFactorization::Compute(spd);
  ASSERT_TRUE(chol.ok());
  auto x_chol = chol->Solve(b);
  auto x_lu = SolveLinearSystem(spd, b);
  ASSERT_TRUE(x_chol.ok() && x_lu.ok());
  EXPECT_LT(MaxAbsDiff(*x_chol, *x_lu), 1e-6 * (1.0 + Norm2(*x_lu)));
}

TEST_P(SolveSweep, InverseTimesMatrixIsIdentity) {
  Matrix a = RandomMatrix();
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  Matrix prod = a.Multiply(*inv);
  EXPECT_LT(Matrix::MaxAbsDiff(prod, Matrix::Identity(a.rows())), 1e-7);
}

TEST_P(SolveSweep, DeterminantMatchesLogDetOnSpd) {
  Matrix spd = RandomSpd();
  auto lu = LuFactorization::Compute(spd);
  auto chol = CholeskyFactorization::Compute(spd);
  ASSERT_TRUE(lu.ok() && chol.ok());
  const double det = lu->Determinant();
  ASSERT_GT(det, 0.0);  // SPD => positive determinant
  EXPECT_NEAR(std::log(det), chol->LogDeterminant(),
              1e-8 * (1.0 + std::fabs(chol->LogDeterminant())));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolveSweep,
    ::testing::Values(SolveCase{1, 2.0, 11}, SolveCase{2, 3.0, 12},
                      SolveCase{3, 3.0, 13}, SolveCase{5, 4.0, 14},
                      SolveCase{8, 5.0, 15}, SolveCase{13, 6.0, 16},
                      SolveCase{21, 8.0, 17}, SolveCase{34, 10.0, 18}));

}  // namespace
}  // namespace genclus
