// Typed-CSR SpMM kernel: dense equivalence, accumulate semantics, row
// blocking invariance, and the K-specialized fast paths.
#include "linalg/spmm.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "linalg/matrix.h"

namespace genclus {
namespace {

// A small owning CSR builder for tests.
struct TestCsr {
  std::vector<size_t> offsets;
  std::vector<uint32_t> cols;
  std::vector<double> values;

  CsrMatrixView View() const { return {offsets, cols, values}; }
};

// Random sparse rows x cols matrix with ~density fraction of non-zeros.
TestCsr RandomCsr(size_t rows, size_t cols, double density, Rng* rng) {
  TestCsr csr;
  csr.offsets.push_back(0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng->Uniform() < density) {
        csr.cols.push_back(static_cast<uint32_t>(c));
        csr.values.push_back(rng->Uniform() * 2.0 - 0.5);
      }
    }
    csr.offsets.push_back(csr.cols.size());
  }
  return csr;
}

Matrix RandomDense(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng->Uniform() - 0.5;
  }
  return m;
}

// Dense reference: out += coeff * A * dense over the full row range.
Matrix DenseReference(const TestCsr& a, double coeff, const Matrix& dense,
                      const Matrix& init) {
  Matrix out = init;
  for (size_t r = 0; r + 1 < a.offsets.size(); ++r) {
    for (size_t j = a.offsets[r]; j < a.offsets[r + 1]; ++j) {
      for (size_t k = 0; k < dense.cols(); ++k) {
        out(r, k) += coeff * a.values[j] * dense(a.cols[j], k);
      }
    }
  }
  return out;
}

// Sweep K over the specialized widths {2,3,4,8} and a generic one.
class SpmmKSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SpmmKSweep, MatchesDenseReference) {
  const size_t k = GetParam();
  Rng rng(19 + k);
  const size_t n = 37;
  TestCsr a = RandomCsr(n, n, 0.15, &rng);
  Matrix dense = RandomDense(n, k, &rng);
  Matrix out(n, k);
  SpmmAccumulate(a.View(), 0.7, dense.data().data(), k, 0, n,
                 out.data().data());
  Matrix want = DenseReference(a, 0.7, dense, Matrix(n, k));
  EXPECT_LT(Matrix::MaxAbsDiff(out, want), 1e-14);
}

TEST_P(SpmmKSweep, AccumulatesOntoExistingValues) {
  const size_t k = GetParam();
  Rng rng(91 + k);
  const size_t n = 20;
  TestCsr a = RandomCsr(n, n, 0.3, &rng);
  Matrix dense = RandomDense(n, k, &rng);
  Matrix init = RandomDense(n, k, &rng);
  Matrix out = init;
  SpmmAccumulate(a.View(), -1.25, dense.data().data(), k, 0, n,
                 out.data().data());
  Matrix want = DenseReference(a, -1.25, dense, init);
  EXPECT_LT(Matrix::MaxAbsDiff(out, want), 1e-14);
}

TEST_P(SpmmKSweep, RowRangeTouchesOnlyItsRows) {
  const size_t k = GetParam();
  Rng rng(7 + k);
  const size_t n = 24;
  TestCsr a = RandomCsr(n, n, 0.4, &rng);
  Matrix dense = RandomDense(n, k, &rng);
  Matrix out(n, k, 5.0);
  SpmmAccumulate(a.View(), 1.0, dense.data().data(), k, 8, 16,
                 out.data().data());
  for (size_t r = 0; r < n; ++r) {
    if (r >= 8 && r < 16) continue;
    for (size_t c = 0; c < k; ++c) {
      EXPECT_EQ(out(r, c), 5.0) << "row " << r << " modified outside range";
    }
  }
}

TEST_P(SpmmKSweep, BlockedSweepIsBitwiseEqualToOneShot) {
  const size_t k = GetParam();
  Rng rng(53 + k);
  const size_t n = 41;
  TestCsr a = RandomCsr(n, n, 0.25, &rng);
  Matrix dense = RandomDense(n, k, &rng);
  Matrix one_shot(n, k);
  SpmmAccumulate(a.View(), 0.3, dense.data().data(), k, 0, n,
                 one_shot.data().data());
  Matrix blocked(n, k);
  for (size_t begin = 0; begin < n; begin += 7) {
    SpmmAccumulate(a.View(), 0.3, dense.data().data(), k, begin,
                   std::min(n, begin + 7), blocked.data().data());
  }
  // Per-row accumulation never crosses a block boundary, so any blocking
  // produces bit-identical output — the property the deterministic EM
  // sweep relies on.
  EXPECT_EQ(one_shot.data(), blocked.data());
}

INSTANTIATE_TEST_SUITE_P(Widths, SpmmKSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u, 11u));

TEST(SpmmTest, ZeroCoeffIsANoOp) {
  Rng rng(3);
  TestCsr a = RandomCsr(10, 10, 0.5, &rng);
  Matrix dense = RandomDense(10, 4, &rng);
  Matrix out(10, 4, 1.5);
  SpmmAccumulate(a.View(), 0.0, dense.data().data(), 4, 0, 10,
                 out.data().data());
  for (size_t r = 0; r < 10; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_EQ(out(r, c), 1.5);
  }
}

TEST(SpmmTest, EmptyRowsLeaveOutputUntouched) {
  TestCsr a;
  a.offsets = {0, 0, 0, 0};  // 3 rows, no non-zeros
  Matrix dense(3, 2, 1.0);
  Matrix out(3, 2, 2.0);
  SpmmAccumulate(a.View(), 3.0, dense.data().data(), 2, 0, 3,
                 out.data().data());
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(out(r, 0), 2.0);
    EXPECT_EQ(out(r, 1), 2.0);
  }
  EXPECT_EQ(a.View().rows(), 3u);
  EXPECT_EQ(a.View().nnz(), 0u);
}

}  // namespace
}  // namespace genclus
