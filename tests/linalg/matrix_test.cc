#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace genclus {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, Identity) {
  Matrix i = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowAccessAndSetRow) {
  Matrix m(2, 3);
  m.SetRow(1, {7.0, 8.0, 9.0});
  const double* row = m.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 7.0);
  EXPECT_DOUBLE_EQ(row[2], 9.0);
  Vector v = m.RowVector(1);
  EXPECT_EQ(v, (Vector{7.0, 8.0, 9.0}));
}

TEST(MatrixTest, Transpose) {
  Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyIdentityIsNoop) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix c = a.Multiply(Matrix::Identity(2));
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(a, c), 0.0);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Vector v = a.MultiplyVector({1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m = {{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, AddScaledAndScale) {
  Matrix a = {{1.0, 1.0}};
  Matrix b = {{2.0, 4.0}};
  a.AddScaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
  a.Scale(2.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 4.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a = {{1.0, 2.0}};
  Matrix b = {{1.5, 1.0}};
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(a, b), 1.0);
}

TEST(VectorOpsTest, DotAndNorm) {
  Vector a = {1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(Dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 3.0);
}

TEST(VectorOpsTest, AddSubtractScale) {
  Vector a = {1.0, 2.0};
  Vector b = {3.0, 5.0};
  EXPECT_EQ(Add(a, b), (Vector{4.0, 7.0}));
  EXPECT_EQ(Subtract(b, a), (Vector{2.0, 3.0}));
  EXPECT_EQ(Scaled(a, 3.0), (Vector{3.0, 6.0}));
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 3.0);
}

}  // namespace
}  // namespace genclus
