#include "linalg/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace genclus {
namespace {

Matrix RandomSymmetric(size_t n, Rng* rng) {
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      const double x = rng->Gaussian();
      a(i, j) = x;
      a(j, i) = x;
    }
  }
  return a;
}

TEST(JacobiTest, DiagonalMatrix) {
  Matrix a = {{3.0, 0.0}, {0.0, 1.0}};
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
}

TEST(JacobiTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix a = {{2.0, 1.0}, {1.0, 2.0}};
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(eig->vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(JacobiTest, RejectsAsymmetric) {
  Matrix a = {{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_FALSE(JacobiEigenSymmetric(a).ok());
}

TEST(JacobiTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(JacobiEigenSymmetric(a).ok());
}

TEST(JacobiTest, ReconstructsMatrix) {
  Rng rng(3);
  const size_t n = 6;
  Matrix a = RandomSymmetric(n, &rng);
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  // A == V diag(lambda) V^T.
  Matrix lam(n, n);
  for (size_t i = 0; i < n; ++i) lam(i, i) = eig->values[i];
  Matrix recon =
      eig->vectors.Multiply(lam).Multiply(eig->vectors.Transpose());
  EXPECT_LT(Matrix::MaxAbsDiff(a, recon), 1e-8);
}

TEST(JacobiTest, EigenvectorsOrthonormal) {
  Rng rng(5);
  Matrix a = RandomSymmetric(5, &rng);
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  Matrix vtv = eig->vectors.Transpose().Multiply(eig->vectors);
  EXPECT_LT(Matrix::MaxAbsDiff(vtv, Matrix::Identity(5)), 1e-9);
}

TEST(JacobiTest, ValuesSortedDescending) {
  Rng rng(7);
  Matrix a = RandomSymmetric(8, &rng);
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  for (size_t i = 1; i < eig->values.size(); ++i) {
    EXPECT_GE(eig->values[i - 1], eig->values[i]);
  }
}

TEST(OrthonormalizeTest, ProducesOrthonormalColumns) {
  Rng rng(11);
  Matrix m(10, 4);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) m(i, j) = rng.Gaussian();
  }
  OrthonormalizeColumns(&m, &rng);
  Matrix mtm = m.Transpose().Multiply(m);
  EXPECT_LT(Matrix::MaxAbsDiff(mtm, Matrix::Identity(4)), 1e-10);
}

TEST(OrthonormalizeTest, RepairsDegenerateColumns) {
  Rng rng(13);
  Matrix m(6, 3);
  // Columns 1 and 2 duplicate column 0.
  for (size_t i = 0; i < 6; ++i) {
    const double x = rng.Gaussian();
    m(i, 0) = x;
    m(i, 1) = x;
    m(i, 2) = x;
  }
  OrthonormalizeColumns(&m, &rng);
  Matrix mtm = m.Transpose().Multiply(m);
  EXPECT_LT(Matrix::MaxAbsDiff(mtm, Matrix::Identity(3)), 1e-9);
}

TEST(TopKEigenTest, MatchesJacobiOnRandomSymmetric) {
  Rng rng(17);
  const size_t n = 12;
  const size_t k = 3;
  Matrix a = RandomSymmetric(n, &rng);
  auto full = JacobiEigenSymmetric(a);
  ASSERT_TRUE(full.ok());
  auto topk = TopKEigenSymmetric(a, k, &rng, 1e-11, 5000);
  ASSERT_TRUE(topk.ok());
  for (size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(topk->values[i], full->values[i], 1e-6) << "eigenvalue " << i;
  }
}

TEST(TopKEigenTest, EigenvectorsSatisfyDefinition) {
  Rng rng(19);
  const size_t n = 15;
  Matrix a = RandomSymmetric(n, &rng);
  auto topk = TopKEigenSymmetric(a, 2, &rng, 1e-11, 5000);
  ASSERT_TRUE(topk.ok());
  for (size_t j = 0; j < 2; ++j) {
    Vector v(n);
    for (size_t i = 0; i < n; ++i) v[i] = topk->vectors(i, j);
    Vector av = a.MultiplyVector(v);
    Vector lv = Scaled(v, topk->values[j]);
    EXPECT_LT(MaxAbsDiff(av, lv), 5e-4) << "eigenpair " << j;
  }
}

TEST(TopKEigenTest, RejectsBadK) {
  Rng rng(23);
  Matrix a = Matrix::Identity(4);
  EXPECT_FALSE(TopKEigenSymmetric(a, 0, &rng).ok());
  EXPECT_FALSE(TopKEigenSymmetric(a, 5, &rng).ok());
}

TEST(TopKEigenTest, HandlesNegativeSpectrum) {
  // All eigenvalues negative: Gershgorin shift must keep the top-algebraic
  // ones on top.
  Matrix a = {{-5.0, 1.0}, {1.0, -3.0}};
  Rng rng(29);
  auto topk = TopKEigenSymmetric(a, 1, &rng, 1e-12, 5000);
  ASSERT_TRUE(topk.ok());
  auto full = JacobiEigenSymmetric(a);
  ASSERT_TRUE(full.ok());
  EXPECT_NEAR(topk->values[0], full->values[0], 1e-8);
}

}  // namespace
}  // namespace genclus
