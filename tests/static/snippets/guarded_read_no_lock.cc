// MUST NOT COMPILE: reads a GENCLUS_GUARDED_BY member without holding
// its mutex (expected diagnostic: "reading variable 'value_' requires
// holding mutex 'mu_'").
#include "snippet_common.h"

namespace genclus_static_test {

int GuardedReadWithoutLock() {
  Counter counter;
  return counter.value_;
}

}  // namespace genclus_static_test
