// MUST NOT COMPILE: scoped-acquires a mutex that is already held
// (expected diagnostic: "acquiring mutex 'mu_' that is already held").
#include "snippet_common.h"

namespace genclus_static_test {

void DoubleAcquire() {
  Counter counter;
  genclus::MutexLock first(counter.mu_);
  genclus::MutexLock second(counter.mu_);
}

}  // namespace genclus_static_test
