// MUST NOT COMPILE: calls a GENCLUS_REQUIRES function without holding
// the required mutex (expected diagnostic: "calling function
// 'ReadLocked' requires holding mutex 'mu_'").
#include "snippet_common.h"

namespace genclus_static_test {

int CallRequiresUnlocked() {
  Counter counter;
  return counter.ReadLocked();
}

}  // namespace genclus_static_test
