// MUST NOT COMPILE: calls a GENCLUS_EXCLUDES (self-locking) function
// while already holding the excluded mutex — the static form of a
// self-deadlock (expected diagnostic: "cannot call function 'Increment'
// while mutex 'mu_' is held").
#include "snippet_common.h"

namespace genclus_static_test {

void ExcludesViolation() {
  Counter counter;
  genclus::MutexLock lock(counter.mu_);
  counter.Increment();
}

}  // namespace genclus_static_test
