// Shared scaffolding for the negative-compilation snippets
// (tests/static). A minimal annotated class exercising each annotation
// kind; control_ok.cc proves this header and the wrappers compile clean,
// so a failing negative snippet fails because of the thread-safety
// diagnostic it provokes, not because of broken scaffolding.
#pragma once

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace genclus_static_test {

class Counter {
 public:
  /// Locks internally; calling it while already holding mu_ is the
  /// excludes_held.cc violation.
  void Increment() GENCLUS_EXCLUDES(mu_) {
    genclus::MutexLock lock(mu_);
    ++value_;
  }

  /// Caller must hold mu_; calling it unlocked is the requires_unheld.cc
  /// violation.
  int ReadLocked() const GENCLUS_REQUIRES(mu_) { return value_; }

  mutable genclus::Mutex mu_;
  int value_ GENCLUS_GUARDED_BY(mu_) = 0;
};

}  // namespace genclus_static_test
