// Positive control: disciplined locking MUST compile under
// -Wthread-safety -Werror. If this snippet fails, the harness
// scaffolding (not an annotation) is broken, and the negative results
// are meaningless.
#include "snippet_common.h"

namespace genclus_static_test {

int ControlOk() {
  Counter counter;
  counter.Increment();
  genclus::MutexLock lock(counter.mu_);
  return counter.ReadLocked() + counter.value_;
}

}  // namespace genclus_static_test
