// MUST NOT COMPILE: acquires via Mutex::Lock and returns without
// releasing (expected diagnostic: "mutex 'mu' is still held at the end
// of function").
#include "snippet_common.h"

namespace genclus_static_test {

void LockWithoutRelease() {
  genclus::Mutex mu;
  mu.Lock();
}

}  // namespace genclus_static_test
