// Integration tests: full pipelines over the synthetic generators —
// exactly the flows the bench harness runs, at miniature scale.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/interpolation.h"
#include "baselines/kmeans.h"
#include "baselines/spectral.h"
#include "baselines/topic_models.h"
#include "core/genclus.h"
#include "datagen/dblp_generator.h"
#include "datagen/weather_generator.h"
#include "eval/link_prediction.h"
#include "eval/nmi.h"
#include "hin/io.h"
#include "prob/simplex.h"

namespace genclus {
namespace {

// Miniature weather network shared across the weather-pipeline tests.
WeatherConfig MiniWeather() {
  WeatherConfig config = WeatherConfig::Setting1();
  config.num_temperature_sensors = 120;
  config.num_precipitation_sensors = 60;
  config.k_nearest = 5;
  config.observations_per_sensor = 5;
  config.seed = 2024;
  return config;
}

DblpConfig MiniDblp() {
  DblpConfig config;
  config.num_conferences = 8;
  config.num_authors = 120;
  config.num_papers = 400;
  config.vocab_size = 150;
  config.terms_per_area = 25;
  config.seed = 2025;
  return config;
}

GenClusConfig WeatherGenClusConfig() {
  GenClusConfig config;
  config.num_clusters = 4;
  config.outer_iterations = 5;
  config.em_iterations = 40;
  config.num_init_seeds = 2;
  config.seed = 7;
  return config;
}

TEST(WeatherPipelineTest, GenClusBeatsChanceClearly) {
  auto data = GenerateWeatherNetwork(MiniWeather());
  ASSERT_TRUE(data.ok());
  auto result = RunGenClus(data->dataset, {"temperature", "precipitation"},
                           WeatherGenClusConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const double nmi = NormalizedMutualInformation(
      result->HardLabels(), data->dataset.labels.raw());
  EXPECT_GT(nmi, 0.5);
}

TEST(WeatherPipelineTest, GenClusBeatsKMeansOnIncompleteAttributes) {
  auto data = GenerateWeatherNetwork(MiniWeather());
  ASSERT_TRUE(data.ok());
  auto gen = RunGenClus(data->dataset, {"temperature", "precipitation"},
                        WeatherGenClusConfig());
  ASSERT_TRUE(gen.ok());
  const double gen_nmi = NormalizedMutualInformation(
      gen->HardLabels(), data->dataset.labels.raw());

  const Attribute& temp = data->dataset.attributes[0];
  const Attribute& precip = data->dataset.attributes[1];
  auto features = InterpolateNumericalAttributes(data->dataset.network,
                                                 {&temp, &precip});
  ASSERT_TRUE(features.ok());
  KMeansConfig kconfig;
  kconfig.num_clusters = 4;
  kconfig.num_restarts = 5;
  kconfig.seed = 5;
  auto km = RunKMeans(*features, kconfig);
  ASSERT_TRUE(km.ok());
  const double km_nmi = NormalizedMutualInformation(
      km->labels, data->dataset.labels.raw());
  // Paper Fig. 7: GenClus dominates k-means (17/18 configurations).
  EXPECT_GT(gen_nmi, km_nmi - 0.05);
}

TEST(WeatherPipelineTest, LinkPredictionOnTpRelation) {
  auto data = GenerateWeatherNetwork(MiniWeather());
  ASSERT_TRUE(data.ok());
  auto result = RunGenClus(data->dataset, {"temperature", "precipitation"},
                           WeatherGenClusConfig());
  ASSERT_TRUE(result.ok());
  for (SimilarityKind kind :
       {SimilarityKind::kCosine, SimilarityKind::kNegativeEuclidean,
        SimilarityKind::kNegativeCrossEntropy}) {
    auto map = EvaluateLinkPrediction(data->dataset.network, result->theta,
                                      data->tp_link, kind);
    ASSERT_TRUE(map.ok());
    // kNN links follow geography which follows clusters: far better than
    // the ~k/|P| random baseline.
    EXPECT_GT(map->map, 0.2) << SimilarityKindName(kind);
  }
}

TEST(WeatherPipelineTest, StrengthsOrderedByAttributeQuality) {
  // Paper Table 5: T-typed neighbors are more reliable than P-typed in
  // Setting 1 with sparse P sensors (P sensors mix over 3 rings).
  auto data = GenerateWeatherNetwork(MiniWeather());
  ASSERT_TRUE(data.ok());
  auto result = RunGenClus(data->dataset, {"temperature", "precipitation"},
                           WeatherGenClusConfig());
  ASSERT_TRUE(result.ok());
  for (double g : result->gamma) EXPECT_GE(g, 0.0);
  // At least one strength strictly positive: links carry signal here.
  double max_gamma = 0.0;
  for (double g : result->gamma) max_gamma = std::max(max_gamma, g);
  EXPECT_GT(max_gamma, 0.0);
}

TEST(DblpPipelineTest, AcNetworkClusteringRecoversAreas) {
  auto corpus = GenerateDblpCorpus(MiniDblp());
  ASSERT_TRUE(corpus.ok());
  auto ac = BuildAcNetwork(*corpus, MiniDblp());
  ASSERT_TRUE(ac.ok());
  GenClusConfig config;
  config.num_clusters = 4;
  config.outer_iterations = 5;
  config.em_iterations = 40;
  config.num_init_seeds = 3;
  config.seed = 11;
  auto result = RunGenClus(ac->dataset, {"text"}, config);
  ASSERT_TRUE(result.ok());
  const double nmi = NormalizedMutualInformation(
      result->HardLabels(), ac->dataset.labels.raw());
  EXPECT_GT(nmi, 0.6);
}

TEST(DblpPipelineTest, AcpNetworkHandlesTextlessTypes) {
  auto corpus = GenerateDblpCorpus(MiniDblp());
  ASSERT_TRUE(corpus.ok());
  auto acp = BuildAcpNetwork(*corpus, MiniDblp());
  ASSERT_TRUE(acp.ok());
  GenClusConfig config;
  config.num_clusters = 4;
  config.outer_iterations = 5;
  config.em_iterations = 40;
  config.num_init_seeds = 3;
  config.seed = 13;
  auto result = RunGenClus(acp->dataset, {"text"}, config);
  ASSERT_TRUE(result.ok());
  // Authors carry no text; their NMI must still be far above zero.
  std::vector<uint32_t> author_truth(acp->dataset.network.num_nodes(),
                                     kUnlabeled);
  for (size_t a = 0; a < acp->author_nodes.size(); ++a) {
    author_truth[acp->author_nodes[a]] =
        acp->dataset.labels.Get(acp->author_nodes[a]);
  }
  const double author_nmi = NormalizedMutualInformation(
      result->HardLabels(), author_truth);
  EXPECT_GT(author_nmi, 0.3);
}

TEST(DblpPipelineTest, GenClusBeatsHomogeneousBaselinesOnAcp) {
  auto corpus = GenerateDblpCorpus(MiniDblp());
  ASSERT_TRUE(corpus.ok());
  auto acp = BuildAcpNetwork(*corpus, MiniDblp());
  ASSERT_TRUE(acp.ok());

  GenClusConfig config;
  config.num_clusters = 4;
  config.outer_iterations = 5;
  config.em_iterations = 40;
  config.num_init_seeds = 3;
  config.seed = 17;
  auto gen = RunGenClus(acp->dataset, {"text"}, config);
  ASSERT_TRUE(gen.ok());
  const double gen_nmi = NormalizedMutualInformation(
      gen->HardLabels(), acp->dataset.labels.raw());

  NetPlsaConfig np_config;
  np_config.num_clusters = 4;
  np_config.seed = 17;
  auto np = RunNetPlsa(acp->dataset.network,
                       acp->dataset.attributes[0], np_config);
  ASSERT_TRUE(np.ok());
  std::vector<uint32_t> np_labels(np->theta.rows());
  for (size_t v = 0; v < np->theta.rows(); ++v) {
    np_labels[v] = static_cast<uint32_t>(ArgMax(np->theta.RowVector(v)));
  }
  const double np_nmi = NormalizedMutualInformation(
      np_labels, acp->dataset.labels.raw());
  // Fig. 6's qualitative claim, with slack for the miniature scale.
  EXPECT_GT(gen_nmi, np_nmi - 0.1);
}

TEST(IoPipelineTest, WeatherRoundTripPreservesClustering) {
  WeatherConfig wconfig = MiniWeather();
  wconfig.num_temperature_sensors = 40;
  wconfig.num_precipitation_sensors = 20;
  wconfig.k_nearest = 3;
  auto data = GenerateWeatherNetwork(wconfig);
  ASSERT_TRUE(data.ok());

  const std::string path = ::testing::TempDir() + "/weather_pipe.tsv";
  ASSERT_TRUE(SaveDataset(data->dataset, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());

  GenClusConfig config = WeatherGenClusConfig();
  config.outer_iterations = 2;
  auto original = RunGenClus(data->dataset,
                             {"temperature", "precipitation"}, config);
  auto reloaded = RunGenClus(*loaded, {"temperature", "precipitation"},
                             config);
  ASSERT_TRUE(original.ok() && reloaded.ok());
  EXPECT_LT(Matrix::MaxAbsDiff(original->theta, reloaded->theta), 1e-9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace genclus
