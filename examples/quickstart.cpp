// Quickstart: build the paper's Fig. 2/Fig. 4 style toy bibliographic
// network by hand, train a clustering Model with Engine::Fit, print the
// soft clustering and the learned relation strengths — then persist the
// model, reload it, and serve fold-in queries for brand-new papers
// through the serving tier: a Server coalesces singly-submitted queries
// into micro-batches behind a bounded queue, and each future's
// QueryResult carries status, membership and latency (train once,
// serve many).
//
//   papers carry text; authors and venues carry nothing — their membership
//   comes purely from links, and the strength of each relation is learned.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <filesystem>
#include <future>
#include <vector>

#include "core/engine.h"
#include "core/model_io.h"
#include "core/server.h"
#include "hin/dataset.h"

using namespace genclus;

int main() {
  // 1. Declare the schema: object types and directed relations.
  Schema schema;
  ObjectTypeId author = schema.AddObjectType("author").value();
  ObjectTypeId paper = schema.AddObjectType("paper").value();
  ObjectTypeId venue = schema.AddObjectType("venue").value();
  LinkTypeId write = schema.AddLinkType("write", author, paper).value();
  LinkTypeId written_by =
      schema.AddLinkType("written_by", paper, author).value();
  LinkTypeId published_by =
      schema.AddLinkType("published_by", paper, venue).value();
  LinkTypeId publish = schema.AddLinkType("publish", venue, paper).value();
  (void)schema.SetInverse(write, written_by);
  (void)schema.SetInverse(publish, published_by);

  // 2. Add objects: 2 authors, 6 papers, 2 venues. Authors 0/1 work on
  //    "databases" / "learning"; venues 0/1 host those areas.
  NetworkBuilder builder(schema);
  NodeId authors[2];
  NodeId papers[6];
  NodeId venues[2];
  for (int i = 0; i < 2; ++i) {
    authors[i] =
        builder.AddNode(author, i == 0 ? "alice" : "bob").value();
    venues[i] = builder.AddNode(venue, i == 0 ? "VLDB" : "ICML").value();
  }
  for (int p = 0; p < 6; ++p) {
    papers[p] = builder.AddNode(paper, "paper" + std::to_string(p)).value();
  }

  // 3. Links: author i writes papers 3i..3i+2, published in venue i.
  for (int p = 0; p < 6; ++p) {
    const int a = p / 3;
    (void)builder.AddLink(authors[a], papers[p], write);
    (void)builder.AddLink(papers[p], authors[a], written_by);
    (void)builder.AddLink(papers[p], venues[a], published_by);
    (void)builder.AddLink(venues[a], papers[p], publish);
  }

  Dataset dataset;
  dataset.network = std::move(builder).Build().value();

  // 4. Text attribute on papers only (vocabulary of 4 terms; terms 0-1 are
  //    database words, terms 2-3 learning words). Authors/venues have NO
  //    attributes — the incomplete case GenClus is built for.
  Attribute text =
      Attribute::Categorical("text", 4, dataset.network.num_nodes());
  for (int p = 0; p < 6; ++p) {
    const uint32_t base = p < 3 ? 0 : 2;
    (void)text.AddTermCount(papers[p], base, 2.0);
    (void)text.AddTermCount(papers[p], base + 1, 1.0);
  }
  dataset.attributes.push_back(std::move(text));

  // 5. Train with K = 2. Engine::Fit returns a persistable Model plus a
  //    FitReport summarizing the run.
  FitOptions options;
  options.attributes = {"text"};
  options.config.num_clusters = 2;
  options.config.outer_iterations = 5;
  options.config.seed = 1;
  auto fit = Engine::Fit(dataset, options);
  if (!fit.ok()) {
    std::fprintf(stderr, "Engine::Fit failed: %s\n",
                 fit.status().ToString().c_str());
    return 1;
  }
  const Model& model = fit->model;
  std::printf("fit: %zu outer iterations in %.3fs, converged=%s\n\n",
              fit->report.outer_iterations, fit->report.total_seconds,
              fit->report.converged ? "yes" : "no");

  // 6. Inspect the output: every object now has a membership vector, and
  //    every relation a learned strength.
  std::printf("soft clustering (theta):\n");
  for (NodeId v = 0; v < dataset.network.num_nodes(); ++v) {
    std::printf("  %-8s [%.3f, %.3f]\n",
                dataset.network.node_name(v).c_str(), model.theta(v, 0),
                model.theta(v, 1));
  }
  std::printf("learned relation strengths (gamma):\n");
  for (LinkTypeId r = 0; r < schema.num_link_types(); ++r) {
    std::printf("  %-14s %.3f\n", model.link_types[r].c_str(),
                model.gamma[r]);
  }

  // 7. Train once, serve many: persist the model, reload it, and answer a
  //    membership query for a NEW paper without retraining.
  const std::string model_path =
      (std::filesystem::temp_directory_path() / "quickstart_model.genclus")
          .string();
  if (Status s = SaveModel(model, model_path); !s.ok()) {
    std::fprintf(stderr, "SaveModel failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto reloaded = LoadModel(model_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "LoadModel failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  // The serving tier: a bounded request queue in front of the batch
  // planner. Producers submit one query at a time; workers coalesce
  // whatever is queued into a micro-batch and run it through the SpMM
  // batch path, so single-query traffic executes at batch throughput.
  // A full queue rejects immediately with kResourceExhausted instead of
  // blocking the producer.
  ServerOptions serve_options;
  serve_options.num_workers = 2;
  serve_options.queue_capacity = 256;
  serve_options.max_batch = 64;
  auto server = Server::Create(&dataset.network,
                               std::move(reloaded).value(), serve_options);
  if (!server.ok()) {
    std::fprintf(stderr, "Server::Create failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  // Two new papers: one by alice at VLDB using database words, one by bob
  // at ICML using learning words. Each Submit returns a future whose
  // QueryResult carries status, membership, hard label and the query's
  // queue/total latency.
  std::vector<NewObjectQuery> queries(2);
  queries[0].links.push_back({authors[0], written_by, 1.0});
  queries[0].links.push_back({venues[0], published_by, 1.0});
  queries[0].observations.push_back(
      NewObjectObservation::Categorical(/*attribute=*/0, /*term=*/0,
                                        /*count=*/2.0));
  queries[1].links.push_back({authors[1], written_by, 1.0});
  queries[1].links.push_back({venues[1], published_by, 1.0});
  queries[1].observations.push_back(
      NewObjectObservation::Categorical(/*attribute=*/0, /*term=*/3,
                                        /*count=*/2.0));

  std::vector<std::future<QueryResult>> pending;
  for (const NewObjectQuery& query : queries) {
    auto submitted = (*server)->Submit(query);
    if (!submitted.ok()) {  // kResourceExhausted = queue full, back off
      std::fprintf(stderr, "Submit rejected: %s\n",
                   submitted.status().ToString().c_str());
      return 1;
    }
    pending.push_back(std::move(submitted).value());
  }
  std::printf("\nnew papers served from the reloaded model:\n");
  const char* blurb[2] = {"alice + VLDB + database words",
                          "bob + ICML + learning words"};
  for (size_t i = 0; i < pending.size(); ++i) {
    const QueryResult answer = pending[i].get();
    if (!answer.ok()) {
      std::fprintf(stderr, "query %zu failed: %s\n", i,
                   answer.status.ToString().c_str());
      return 1;
    }
    std::printf("  %-32s [%.3f, %.3f] -> cluster %u (%.0fus end to end)\n",
                blurb[i], answer.membership[0], answer.membership[1],
                answer.hard_label, answer.total_seconds * 1e6);
  }
  const ServerStats stats = (*server)->Stats();
  std::printf("server: %zu accepted, %zu micro-batches, "
              "p99 end-to-end %.0fus\n",
              stats.accepted, stats.batches, stats.end_to_end.p99_us);
  std::printf("\nExpected: papers/authors/venues of the two areas fall in\n"
              "opposite clusters; all objects get memberships even though\n"
              "only papers carry text — and new objects are served without\n"
              "retraining, one SpMM batch at a time.\n");
  std::filesystem::remove(model_path);
  return 0;
}
