// The paper's Fig. 1 motivating example: a political forum with users,
// blogs written by users, books liked by users, and friendships. The
// clustering purpose is POLITICAL INTEREST, specified through the text
// attribute on profiles/blogs/books. Only some users filled in their
// profile — the rest are clustered through their blogs, liked books and
// friends, with the importance of each relation learned.
//
// Run: ./build/examples/political_forum
#include <cstdio>

#include "common/random.h"
#include "core/engine.h"
#include "hin/dataset.h"
#include "prob/simplex.h"

using namespace genclus;

int main() {
  // Two political camps; 20 users, 24 blogs, 8 books.
  const size_t kUsers = 20;
  const size_t kBlogs = 24;
  const size_t kBooks = 8;
  const size_t kVocab = 12;  // terms 0-5 camp A, 6-11 camp B
  Rng rng(99);

  Schema schema;
  ObjectTypeId user = schema.AddObjectType("user").value();
  ObjectTypeId blog = schema.AddObjectType("blog").value();
  ObjectTypeId book = schema.AddObjectType("book").value();
  LinkTypeId writes = schema.AddLinkType("writes", user, blog).value();
  LinkTypeId written_by = schema.AddLinkType("written_by", blog, user).value();
  LinkTypeId likes = schema.AddLinkType("likes", user, book).value();
  LinkTypeId liked_by = schema.AddLinkType("liked_by", book, user).value();
  LinkTypeId friendship = schema.AddLinkType("friend", user, user).value();
  (void)schema.SetInverse(writes, written_by);
  (void)schema.SetInverse(likes, liked_by);

  NetworkBuilder builder(schema);
  std::vector<NodeId> users(kUsers);
  std::vector<NodeId> blogs(kBlogs);
  std::vector<NodeId> books(kBooks);
  std::vector<int> camp(kUsers);
  for (size_t u = 0; u < kUsers; ++u) {
    camp[u] = u < kUsers / 2 ? 0 : 1;
    users[u] = builder.AddNode(user, "user" + std::to_string(u)).value();
  }
  for (size_t b = 0; b < kBlogs; ++b) {
    blogs[b] = builder.AddNode(blog, "blog" + std::to_string(b)).value();
  }
  for (size_t b = 0; b < kBooks; ++b) {
    books[b] = builder.AddNode(book, "book" + std::to_string(b)).value();
  }

  // Blogs: written by users of alternating camps.
  for (size_t b = 0; b < kBlogs; ++b) {
    const size_t author = b % kUsers;
    (void)builder.AddLink(users[author], blogs[b], writes);
    (void)builder.AddLink(blogs[b], users[author], written_by);
  }
  // Books: first half camp A, second half camp B; users like mostly
  // same-camp books (85%).
  for (size_t u = 0; u < kUsers; ++u) {
    for (int l = 0; l < 3; ++l) {
      size_t target_camp =
          rng.Uniform() < 0.85 ? camp[u] : 1 - camp[u];
      size_t b = target_camp * (kBooks / 2) + rng.UniformIndex(kBooks / 2);
      (void)builder.AddLink(users[u], books[b], likes);
      (void)builder.AddLink(books[b], users[u], liked_by);
    }
  }
  // Friendship: NOISY — only 60% same-camp (people befriend across camps),
  // so its learned strength should come out lower than user-like-book.
  for (size_t u = 0; u < kUsers; ++u) {
    for (int f = 0; f < 3; ++f) {
      size_t target_camp = rng.Uniform() < 0.6 ? camp[u] : 1 - camp[u];
      size_t v = target_camp * (kUsers / 2) + rng.UniformIndex(kUsers / 2);
      if (v != u) (void)builder.AddLink(users[u], users[v], friendship);
    }
  }

  Dataset dataset;
  dataset.network = std::move(builder).Build().value();

  // Text: every blog and book has text; only 30% of users filled in their
  // profile (the incomplete attribute of Fig. 1).
  Attribute text =
      Attribute::Categorical("text", kVocab, dataset.network.num_nodes());
  auto add_text = [&](NodeId v, int c) {
    for (int t = 0; t < 4; ++t) {
      (void)text.AddTermCount(
          v, static_cast<uint32_t>(6 * c + rng.UniformIndex(6)), 1.0);
    }
  };
  for (size_t b = 0; b < kBlogs; ++b) add_text(blogs[b], camp[b % kUsers]);
  for (size_t b = 0; b < kBooks; ++b) {
    add_text(books[b], b < kBooks / 2 ? 0 : 1);
  }
  size_t with_profile = 0;
  for (size_t u = 0; u < kUsers; ++u) {
    if (rng.Uniform() < 0.3) {
      add_text(users[u], camp[u]);
      ++with_profile;
    }
  }
  dataset.attributes.push_back(std::move(text));

  std::printf("political forum: %zu users (%zu with profiles), %zu blogs, "
              "%zu books\n\n",
              kUsers, with_profile, kBlogs, kBooks);

  FitOptions options;
  options.attributes = {"text"};
  options.config.num_clusters = 2;
  options.config.outer_iterations = 8;
  options.config.seed = 5;
  options.config.num_init_seeds = 5;
  auto fit = Engine::Fit(dataset, options);
  if (!fit.ok()) {
    std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
    return 1;
  }
  const Model& model = fit->model;

  // How many users land in their true camp (up to label swap)?
  size_t agree = 0;
  for (size_t u = 0; u < kUsers; ++u) {
    const size_t label = ArgMax(model.theta.RowVector(users[u]));
    if (static_cast<int>(label) == camp[u]) ++agree;
  }
  if (agree < kUsers / 2) agree = kUsers - agree;  // cluster ids may swap
  std::printf("users in their true camp: %zu / %zu\n\n", agree, kUsers);

  std::printf("learned relation strengths:\n");
  for (LinkTypeId r = 0; r < schema.num_link_types(); ++r) {
    std::printf("  %-12s %.3f\n",
                dataset.network.schema().link_type(r).name.c_str(),
                model.gamma[r]);
  }
  std::printf("\nFig. 1's question answered: for the purpose of clustering\n"
              "POLITICAL interests, user-like-book carries more weight than\n"
              "friendship — and the algorithm figured that out by itself.\n");
  return 0;
}
