// Weather sensor walkthrough (the paper's Example 2): generate a sensor
// network where temperature and precipitation sensors each observe only
// their own attribute (incomplete by construction), cluster with GenClus
// over BOTH attributes, and use the soft memberships for link prediction.
//
// Run: ./build/examples/weather_sensors [--setting 1|2] [--nobs N]
#include <cstdio>

#include "common/flags.h"
#include "core/engine.h"
#include "datagen/weather_generator.h"
#include "eval/link_prediction.h"
#include "eval/nmi.h"

using namespace genclus;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int setting = static_cast<int>(flags.GetInt("setting", 2));

  WeatherConfig wconfig =
      setting == 1 ? WeatherConfig::Setting1() : WeatherConfig::Setting2();
  wconfig.num_temperature_sensors =
      static_cast<size_t>(flags.GetInt("temperature-sensors", 600));
  wconfig.num_precipitation_sensors =
      static_cast<size_t>(flags.GetInt("precipitation-sensors", 300));
  wconfig.observations_per_sensor =
      static_cast<size_t>(flags.GetInt("nobs", 5));
  wconfig.seed = 2025;
  auto data = GenerateWeatherNetwork(wconfig);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("weather network (setting %d): %zu T + %zu P sensors, "
              "%zu kNN links, %zu observations per sensor\n",
              setting, wconfig.num_temperature_sensors,
              wconfig.num_precipitation_sensors,
              data->dataset.network.num_links(),
              wconfig.observations_per_sensor);
  std::printf("every sensor observes ONE attribute; the 4 weather patterns\n"
              "are only identifiable from both — links must combine them.\n\n");

  FitOptions options;
  options.attributes = {"temperature", "precipitation"};
  options.config.num_clusters = 4;
  options.config.outer_iterations = 5;
  options.config.em_iterations = 40;
  options.config.num_init_seeds = 5;
  options.config.init_em_steps = 5;
  options.config.seed = 3;
  auto fit = Engine::Fit(data->dataset, options);
  if (!fit.ok()) {
    std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
    return 1;
  }
  const Model& model = fit->model;

  std::printf("NMI vs planted weather patterns: %.3f\n",
              NormalizedMutualInformation(model.HardLabels(),
                                          data->dataset.labels.raw()));
  std::printf("learned strengths: TT=%.2f TP=%.2f PT=%.2f PP=%.2f\n",
              model.gamma[data->tt_link], model.gamma[data->tp_link],
              model.gamma[data->pt_link], model.gamma[data->pp_link]);

  // Link prediction: who are a temperature sensor's precipitation
  // neighbors? Rank by membership similarity.
  std::printf("\nlink prediction for <T,P> (MAP):\n");
  for (SimilarityKind kind :
       {SimilarityKind::kCosine, SimilarityKind::kNegativeEuclidean,
        SimilarityKind::kNegativeCrossEntropy}) {
    auto map = EvaluateLinkPrediction(data->dataset.network, model.theta,
                                      data->tp_link, kind);
    if (map.ok()) {
      std::printf("  %-12s %.4f over %zu queries\n",
                  SimilarityKindName(kind), map->map, map->num_queries);
    }
  }
  std::printf("\nThe asymmetric -H(tj,ti) typically ranks best (paper\n"
              "Table 4) — membership vectors are not interchangeable.\n");
  return 0;
}
