// Bibliographic-network walkthrough (the paper's Example 1): generate a
// synthetic four-area DBLP-style ACP network, cluster it with GenClus
// according to the text attribute, and report:
//   * per-object-type accuracy against the planted research areas,
//   * the learned relation strengths (who you should trust: an author or
//     a venue?),
//   * example soft memberships for a pure and a broad venue.
//
// Run: ./build/examples/bibliographic_network [--authors N] [--papers N]
#include <cstdio>

#include "common/flags.h"
#include "core/engine.h"
#include "datagen/dblp_generator.h"
#include "eval/nmi.h"
#include "prob/simplex.h"

using namespace genclus;

namespace {

double SubsetNmi(const std::vector<uint32_t>& pred, const Labels& truth,
                 const std::vector<NodeId>& subset) {
  std::vector<uint32_t> p(pred.size(), kUnlabeled);
  std::vector<uint32_t> t(pred.size(), kUnlabeled);
  for (NodeId v : subset) {
    p[v] = pred[v];
    t[v] = truth.Get(v);
  }
  return NormalizedMutualInformation(p, t);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);

  DblpConfig data_config;
  data_config.num_authors =
      static_cast<size_t>(flags.GetInt("authors", 1200));
  data_config.num_papers = static_cast<size_t>(flags.GetInt("papers", 3000));
  data_config.seed = 2024;
  auto corpus = GenerateDblpCorpus(data_config);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  auto acp = BuildAcpNetwork(*corpus, data_config);
  if (!acp.ok()) {
    std::fprintf(stderr, "%s\n", acp.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = acp->dataset;
  std::printf("ACP network: %zu authors, %zu conferences, %zu papers, "
              "%zu links\n",
              acp->author_nodes.size(), acp->conference_nodes.size(),
              acp->paper_nodes.size(), dataset.network.num_links());
  std::printf("text attribute: %zu of %zu objects carry observations "
              "(papers only)\n\n",
              dataset.attributes[0].NumObservedNodes(),
              dataset.network.num_nodes());

  FitOptions options;
  options.attributes = {"text"};
  options.config.num_clusters = 4;
  options.config.outer_iterations = 10;
  options.config.em_iterations = 40;
  options.config.num_init_seeds = 5;
  options.config.init_em_steps = 3;
  options.config.seed = 7;
  options.config.num_threads = 4;
  auto fit = Engine::Fit(dataset, options);
  if (!fit.ok()) {
    std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
    return 1;
  }
  const Model& model = fit->model;

  const auto pred = model.HardLabels();
  std::printf("clustering accuracy vs planted areas (NMI):\n");
  std::printf("  papers:      %.3f\n",
              SubsetNmi(pred, dataset.labels, acp->paper_nodes));
  std::printf("  authors:     %.3f   (no text — links only!)\n",
              SubsetNmi(pred, dataset.labels, acp->author_nodes));
  std::printf("  conferences: %.3f   (no text — links only!)\n\n",
              SubsetNmi(pred, dataset.labels, acp->conference_nodes));

  std::printf("learned relation strengths:\n");
  const char* names[] = {"write<A,P>", "written_by<P,A>", "publish<C,P>",
                         "published_by<P,C>"};
  const LinkTypeId ids[] = {acp->write, acp->written_by, acp->publish,
                            acp->published_by};
  for (int i = 0; i < 4; ++i) {
    std::printf("  %-18s %.3f\n", names[i], model.gamma[ids[i]]);
  }
  std::printf("\nReading: written_by<P,A> outweighs published_by<P,C> — an\n"
              "author identifies a paper's area better than its venue,\n"
              "because some venues are broad-spectrum (the CIKM effect).\n");
  return 0;
}
