// One-file downstream consumer: trains a tiny model through Engine::Fit,
// persists and reloads it, and serves fold-in queries through both the
// legacy wrapper (Infer) and the batch-planned pipeline (Plan/Execute).
// Exercises the installed headers and every exported library layer end to
// end.
#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "core/model_io.h"
#include "hin/dataset.h"

int main() {
  using namespace genclus;

  Schema schema;
  ObjectTypeId doc = schema.AddObjectType("doc").value();
  LinkTypeId cites = schema.AddLinkType("cites", doc, doc).value();

  NetworkBuilder builder(schema);
  for (int i = 0; i < 8; ++i) {
    (void)builder.AddNode(doc, "doc" + std::to_string(i)).value();
  }
  // Two 4-cliques.
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 0; b < 8; ++b) {
      if (a != b && a / 4 == b / 4) (void)builder.AddLink(a, b, cites);
    }
  }
  Dataset dataset;
  dataset.network = std::move(builder).Build().value();
  Attribute text = Attribute::Categorical("text", 2, 8);
  for (NodeId v = 0; v < 8; ++v) {
    (void)text.AddTermCount(v, v < 4 ? 0 : 1, 3.0);
  }
  dataset.attributes.push_back(std::move(text));

  FitOptions options;
  options.attributes = {"text"};
  options.config.num_clusters = 2;
  options.config.outer_iterations = 3;
  auto fit = Engine::Fit(dataset, options);
  if (!fit.ok()) {
    std::fprintf(stderr, "Fit failed: %s\n",
                 fit.status().ToString().c_str());
    return 1;
  }

  const auto path =
      (std::filesystem::temp_directory_path() / "consumer_check.model")
          .string();
  if (!SaveModel(fit->model, path).ok()) return 1;
  auto model = LoadModel(path);
  std::filesystem::remove(path);
  if (!model.ok()) return 1;

  auto engine =
      Engine::Create(&dataset.network, std::move(model).value());
  if (!engine.ok()) return 1;
  NewObjectQuery query;
  query.links.push_back({0, cites, 1.0});
  auto theta = engine->Infer(query);
  if (!theta.ok() || theta->size() != 2) return 1;

  // The batch-planned pipeline must agree with the wrapper exactly.
  InferenceResult planned = engine->Execute(engine->Plan({&query, 1}));
  if (planned.size() != 1 || !planned.ok(0) ||
      planned.memberships.RowVector(0) != *theta) {
    return 1;
  }

  std::printf("consumer check OK: new doc membership [%.3f, %.3f] "
              "(hard label %u)\n",
              (*theta)[0], (*theta)[1], planned.hard_labels[0]);
  return 0;
}
