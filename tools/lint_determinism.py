#!/usr/bin/env python3
"""Project-specific determinism lint for the genclus library sources.

The library's headline guarantee is bitwise thread-count invariance:
training (EM sweep, strength Newton) and serving (batch planner, server
tier) must produce identical bytes for any pool size. The benches gate
that dynamically (0-drift exits); this lint enforces the source-level
invariants that make the guarantee hold BY CONSTRUCTION, so a violation
is caught in review rather than by a flaky drift gate:

  R1  No unordered-container use in src/core or src/linalg, and no
      range-for iteration over a variable declared as an unordered
      container anywhere in src/. Hash-order iteration feeding a
      floating-point accumulation silently reorders sums.
  R2  No nondeterministic sources — rand()/srand(), std::random_device,
      wall-clock reads (std::chrono::system_clock, time(NULL),
      gettimeofday, clock()) — outside src/common/random.* and
      src/common/timer.h. All randomness flows through the seeded
      genclus::Rng; steady_clock is allowed (monotonic timing only).
  R3  No raw std::thread outside the two sanctioned owners,
      src/common/thread_pool.* and src/core/server.*. Ad-hoc threads
      bypass the pool's deterministic block scheduling and the TSan
      lane's coverage. (std::thread::hardware_concurrency is allowed.)
  R4  No naked std synchronization primitives (std::mutex,
      std::lock_guard, std::unique_lock, std::scoped_lock,
      std::condition_variable*, <mutex>/<condition_variable> includes)
      outside src/common/mutex.h. Everything else must use the annotated
      genclus::Mutex/MutexLock/CondVar wrappers so Clang's
      -Wthread-safety analysis can see every lock.
  R5  No GENCLUS_FAILPOINT sites in src/core or src/linalg outside the
      sanctioned robustness surfaces (src/core/server.cc,
      src/core/model_io.cc). A failpoint inside the numeric hot path
      (EM sweep, SpMM, planner) would be a branch whose firing perturbs
      timing and — if it mutates state — the bitwise pipeline; fault
      injection belongs at the serving/IO boundaries.

Scope: src/**/*.{h,cc}. Tests, benches and examples are exempt by
design — benches time with wall clocks and tests spawn raw threads to
provoke races.

Escape hatch: a finding whose line (or the line above it) contains
    NOLINT(determinism: <justification>)
is suppressed, but only when the justification is non-empty; bare
NOLINTs are themselves findings. Suppressions are printed so reviews
see them.

Exit status: 0 = clean, 1 = findings, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

NOLINT_RE = re.compile(r"NOLINT\(determinism:\s*(?P<why>[^)]*)\)")
# Any determinism-NOLINT mention; pairs with NOLINT_RE to reject ones
# whose justification is missing or empty.
ANY_NOLINT_RE = re.compile(r"NOLINT\(determinism")

UNORDERED_TYPE_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\b")
UNORDERED_INCLUDE_RE = re.compile(
    r'#\s*include\s*<unordered_(?:map|set)>')
# `std::unordered_map<...> name` / `auto name : unordered-typed expr` is
# undecidable textually; we track declared variable names per file and
# flag range-fors over them.
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;=]*>\s*&?\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*[;={(]")
RANGE_FOR_RE = re.compile(
    r"for\s*\([^;)]*:\s*\*?(?P<name>[A-Za-z_]\w*)(?:\s*\))")

NONDET_SOURCES = [
    (re.compile(r"(?<![\w.:])rand\s*\("), "rand()"),
    (re.compile(r"(?<![\w.:])srand\s*\("), "srand()"),
    (re.compile(r"std::random_device\b"), "std::random_device"),
    (re.compile(r"std::chrono::system_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"(?<![\w.:])gettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time(NULL)"),
    (re.compile(r"(?<![\w.:])clock\s*\(\s*\)"), "clock()"),
]

THREAD_RE = re.compile(r"std::thread\b(?!::hardware_concurrency)")

NAKED_SYNC = [
    (re.compile(r"std::(?:recursive_|timed_|shared_)?mutex\b"), "std mutex"),
    (re.compile(r"std::lock_guard\b"), "std::lock_guard"),
    (re.compile(r"std::unique_lock\b"), "std::unique_lock"),
    (re.compile(r"std::scoped_lock\b"), "std::scoped_lock"),
    (re.compile(r"std::condition_variable(?:_any)?\b"),
     "std::condition_variable"),
    (re.compile(r'#\s*include\s*<mutex>'), "#include <mutex>"),
    (re.compile(r'#\s*include\s*<condition_variable>'),
     "#include <condition_variable>"),
]

# Allowlists (paths relative to the repo root, forward slashes).
RANDOM_OK = {"src/common/random.h", "src/common/random.cc",
             "src/common/timer.h"}
THREAD_OK = {"src/common/thread_pool.h", "src/common/thread_pool.cc",
             "src/core/server.h", "src/core/server.cc"}
SYNC_OK = {"src/common/mutex.h"}
# Files in the strict directories allowed to host failpoint sites (R5):
# the serving tier and model IO — robustness boundaries, not hot loops.
FAILPOINT_OK = {"src/core/server.cc", "src/core/model_io.cc"}
FAILPOINT_RE = re.compile(r"\bGENCLUS_FAILPOINT\s*\(")
# Accumulation-order-sensitive directories for the unordered-container
# include/type ban (R1's strict form).
STRICT_UNORDERED_DIRS = ("src/core/", "src/linalg/")


class Finding:
    def __init__(self, path: str, line_no: int, rule: str, message: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and string literals so tokens
    mentioned in prose or messages don't trip the lint. (Block comments
    are handled by the caller's in_block state.)"""
    out = []
    i, n = 0, len(line)
    in_string = False
    while i < n:
        ch = line[i]
        if in_string:
            if ch == "\\":
                i += 2
                continue
            if ch == '"':
                in_string = False
            i += 1
            continue
        if ch == '"':
            in_string = True
            i += 1
            continue
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(ch)
        i += 1
    return "".join(out)


def scan_file(root: Path, rel: str, findings: list[Finding],
              suppressions: list[str]) -> None:
    text = (root / rel).read_text(encoding="utf-8")
    lines = text.splitlines()
    unordered_vars: set[str] = set()
    in_block_comment = False

    def suppressed(idx: int, line: str) -> bool:
        for candidate_idx in (idx, idx - 1):
            if 0 <= candidate_idx < len(lines):
                candidate = lines[candidate_idx]
                match = NOLINT_RE.search(candidate)
                if match and match.group("why").strip():
                    suppressions.append(
                        f"{rel}:{idx + 1}: suppressed "
                        f"({match.group('why').strip()})")
                    return True
        del line
        return False

    def add(idx: int, line: str, rule: str, message: str) -> None:
        if not suppressed(idx, line):
            findings.append(Finding(rel, idx + 1, rule, message))

    for idx, raw in enumerate(lines):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        # Strip any complete /* ... */ spans, then detect an opener.
        line = re.sub(r"/\*.*?\*/", " ", line)
        start = line.find("/*")
        if start >= 0:
            line = line[:start]
            in_block_comment = True
        # A NOLINT without a non-empty justification is itself a finding,
        # whether or not it sits on a line with code: every suppression
        # must say why.
        if ANY_NOLINT_RE.search(raw):
            justified = NOLINT_RE.search(raw)
            if not justified or not justified.group("why").strip():
                findings.append(Finding(
                    rel, idx + 1, "NOLINT",
                    "NOLINT(determinism: ...) without a justification"))
        code = strip_comments_and_strings(line)
        if not code.strip():
            continue

        strict_unordered = rel.startswith(STRICT_UNORDERED_DIRS)
        if strict_unordered and UNORDERED_INCLUDE_RE.search(code):
            add(idx, raw, "R1",
                "unordered-container include in an accumulation-order-"
                "sensitive directory; use sorted/vector containers")
        if strict_unordered and UNORDERED_TYPE_RE.search(code):
            add(idx, raw, "R1",
                "unordered container in an accumulation-order-sensitive "
                "directory; hash-order iteration reorders reductions")
        decl = UNORDERED_DECL_RE.search(code)
        if decl:
            unordered_vars.add(decl.group("name"))
        range_for = RANGE_FOR_RE.search(code)
        if range_for and range_for.group("name") in unordered_vars:
            add(idx, raw, "R1",
                f"range-for over unordered container "
                f"'{range_for.group('name')}': iteration order is "
                f"hash-seed dependent")

        if rel not in RANDOM_OK:
            for pattern, label in NONDET_SOURCES:
                if pattern.search(code):
                    add(idx, raw, "R2",
                        f"{label}: nondeterministic source outside "
                        f"src/common/random.*; thread the seeded "
                        f"genclus::Rng (or WallTimer for timing) instead")

        if rel not in THREAD_OK and THREAD_RE.search(code):
            add(idx, raw, "R3",
                "raw std::thread outside ThreadPool/Server; use the "
                "pool's deterministic block scheduling")

        if rel not in SYNC_OK:
            for pattern, label in NAKED_SYNC:
                if pattern.search(code):
                    add(idx, raw, "R4",
                        f"{label}: naked std synchronization primitive; "
                        f"use the annotated genclus::Mutex/MutexLock/"
                        f"CondVar (common/mutex.h) so -Wthread-safety "
                        f"sees the lock")

        if (rel.startswith(STRICT_UNORDERED_DIRS)
                and rel not in FAILPOINT_OK
                and FAILPOINT_RE.search(code)):
            add(idx, raw, "R5",
                "GENCLUS_FAILPOINT site in the numeric hot path; fault "
                "injection is confined to the serving/IO boundaries "
                "(src/core/server.cc, src/core/model_io.cc)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: parent of this script's directory)")
    args = parser.parse_args()

    root = (Path(args.root).resolve() if args.root
            else Path(__file__).resolve().parent.parent)
    src = root / "src"
    if not src.is_dir():
        print(f"lint_determinism: no src/ under {root}", file=sys.stderr)
        return 2

    files = sorted(
        str(p.relative_to(root)).replace("\\", "/")
        for ext in ("*.h", "*.cc")
        for p in src.rglob(ext))
    findings: list[Finding] = []
    suppressions: list[str] = []
    for rel in files:
        scan_file(root, rel, findings, suppressions)

    for line in suppressions:
        print(f"note: {line}")
    for finding in findings:
        print(finding)
    print(f"lint_determinism: {len(files)} files, {len(findings)} "
          f"finding(s), {len(suppressions)} justified suppression(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
